package trace

import (
	"errors"
	"testing"
	"testing/quick"

	"hhgb/internal/gb"
	"hhgb/internal/hier"
)

func TestParseFormatIPv4RoundTrip(t *testing.T) {
	cases := map[string]uint32{
		"0.0.0.0":         0,
		"255.255.255.255": 0xffffffff,
		"10.0.0.1":        0x0a000001,
		"192.168.1.254":   0xc0a801fe,
	}
	for s, want := range cases {
		got, err := ParseIPv4(s)
		if err != nil || got != want {
			t.Fatalf("ParseIPv4(%q) = %x, %v", s, got, err)
		}
		if FormatIPv4(got) != s {
			t.Fatalf("FormatIPv4(%x) = %q", got, FormatIPv4(got))
		}
	}
}

func TestParseIPv4Rejects(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "01.2.3.4", "1..2.3", "-1.2.3.4"} {
		if _, err := ParseIPv4(s); !errors.Is(err, gb.ErrInvalidValue) {
			t.Fatalf("ParseIPv4(%q) = %v", s, err)
		}
	}
}

func TestIndexIPv4Bounds(t *testing.T) {
	if _, err := IndexToIPv4(IPv4Space); !errors.Is(err, gb.ErrIndexOutOfBounds) {
		t.Fatalf("got %v", err)
	}
	ip, err := IndexToIPv4(IPv4ToIndex(12345))
	if err != nil || ip != 12345 {
		t.Fatalf("round trip = %d, %v", ip, err)
	}
}

func TestAnonymizerBijective(t *testing.T) {
	a := NewAnonymizer(0xfeedface)
	f := func(ip uint32) bool {
		return a.Deanon(a.Anon(ip)) == ip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAnonymizerActuallyPermutes(t *testing.T) {
	a := NewAnonymizer(1)
	same := 0
	for ip := uint32(0); ip < 10000; ip++ {
		if a.Anon(ip) == ip {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("%d/10000 fixed points", same)
	}
}

func TestAnonymizerKeyed(t *testing.T) {
	a1 := NewAnonymizer(1)
	a2 := NewAnonymizer(2)
	diff := 0
	for ip := uint32(0); ip < 1000; ip++ {
		if a1.Anon(ip) != a2.Anon(ip) {
			diff++
		}
	}
	if diff < 990 {
		t.Fatalf("keys nearly identical: %d/1000 differ", diff)
	}
}

func TestGeneratorDeterministicAndPositive(t *testing.T) {
	g1, err := NewGenerator(7)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(7)
	for k := 0; k < 1000; k++ {
		f1, f2 := g1.Next(), g2.Next()
		if f1 != f2 {
			t.Fatalf("flow %d differs: %+v vs %+v", k, f1, f2)
		}
		if f1.Packets == 0 {
			t.Fatal("zero-packet flow")
		}
	}
	batch := g1.Batch(50)
	if len(batch) != 50 {
		t.Fatalf("batch = %d", len(batch))
	}
}

func TestWindowRotation(t *testing.T) {
	w, err := NewWindow(100, hier.Config{Cuts: []int{32}})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := NewGenerator(3)
	if err := w.Observe(g.Batch(250)); err != nil {
		t.Fatal(err)
	}
	if got := len(w.Completed()); got != 2 {
		t.Fatalf("completed windows = %d, want 2", got)
	}
	if w.CurrentFill() != 50 {
		t.Fatalf("current fill = %d, want 50", w.CurrentFill())
	}
	// Mass conservation: packets across completed + current == generated.
	var total uint64
	for _, m := range w.Completed() {
		v, err := gb.ReduceScalar(m, gb.Plus[uint64]())
		if err != nil {
			t.Fatal(err)
		}
		total += v
	}
	cur, err := w.Current()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := gb.ReduceScalar(cur, gb.Plus[uint64]())
	total += v

	g2, _ := NewGenerator(3)
	var want uint64
	for _, f := range g2.Batch(250) {
		want += f.Packets
	}
	if total != want {
		t.Fatalf("packet mass %d != generated %d", total, want)
	}
}

func TestWindowExactBoundary(t *testing.T) {
	w, err := NewWindow(50, hier.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := NewGenerator(9)
	if err := w.Observe(g.Batch(100)); err != nil {
		t.Fatal(err)
	}
	if len(w.Completed()) != 2 || w.CurrentFill() != 0 {
		t.Fatalf("windows = %d, fill = %d", len(w.Completed()), w.CurrentFill())
	}
}

func TestWindowValidation(t *testing.T) {
	if _, err := NewWindow(0, hier.Config{}); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("got %v", err)
	}
}
