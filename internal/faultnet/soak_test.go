package faultnet_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"hhgb"
	"hhgb/hhgbclient"
	"hhgb/internal/faultnet"
)

// TestSoakRandomFaultsExactlyOnce is the property-style soak: K concurrent
// clients stream disjoint deterministic regions through one fault-
// injecting relay into a durable hhgb-serve subprocess, while a seeded
// schedule cuts connections at random frame counts and SIGKILLs/restarts
// the server mid-stream. Whatever interleaving results, the recovered
// matrix must equal the exact union of the sent streams — the invariant
// is independent of the schedule, so any seed must pass. Override the
// seed with HHGB_SOAK_SEED to replay a failure.
func TestSoakRandomFaultsExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess soak test in -short mode")
	}
	seed := int64(0x5EED_CAFE)
	if env := os.Getenv("HHGB_SOAK_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 0, 64)
		if err != nil {
			t.Fatalf("HHGB_SOAK_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("soak seed %d (replay with HHGB_SOAK_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	// Pre-draw the whole schedule so the concurrent phase never touches
	// the (unsynchronized) generator: a relay script for the first 24
	// connections, and two server kill delays.
	script := make([]faultnet.ConnPlan, 24)
	for i := range script {
		switch rng.Intn(3) {
		case 0:
			script[i] = faultnet.ConnPlan{CutAfterC2SFrames: 2 + rng.Intn(25)}
		case 1:
			script[i] = faultnet.ConnPlan{BlackholeS2CAfter: 1 + rng.Intn(4), CutAfterC2SFrames: 4 + rng.Intn(20)}
		default:
			// transparent
		}
	}
	killDelays := []time.Duration{
		time.Duration(40+rng.Intn(120)) * time.Millisecond,
		time.Duration(40+rng.Intn(120)) * time.Millisecond,
	}

	const (
		clients = 3
		batches = 40
	)
	bin := buildServe(t)
	dir := filepath.Join(t.TempDir(), "state")
	args := []string{"-scale", "20", "-shards", "2", "-durable", dir, "-sync-every", "4"}
	proc, addr := spawnServe(t, bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	var procMu sync.Mutex
	alive := true
	defer func() {
		procMu.Lock()
		defer procMu.Unlock()
		if alive {
			proc.Process.Kill()
			proc.Wait()
		}
	}()
	relay, err := faultnet.New(addr, script)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	var (
		mu               sync.Mutex
		refS, refD, refV []uint64
		wg               sync.WaitGroup
	)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := hhgbclient.Dial(relay.Addr(), hhgbclient.WithReconnect(),
				hhgbclient.WithFlushEntries(e2ePer), hhgbclient.WithFlushInterval(0),
				hhgbclient.WithSession(fmt.Sprintf("soak-%d", id)))
			if err != nil {
				t.Errorf("client %d: %v", id, err)
				return
			}
			defer c.Close()
			var s, d, v []uint64
			for b := 0; b < batches; b++ {
				bs, bd, bw := batchFor(10+id, b)
				retryOp(t, fmt.Sprintf("client %d append", id), func() error { return c.AppendWeighted(bs, bd, bw) })
				s = append(s, bs...)
				d = append(d, bd...)
				v = append(v, bw...)
				// Pace the stream so the kill schedule lands mid-flight
				// instead of after everything is already acked.
				time.Sleep(3 * time.Millisecond)
			}
			retryOp(t, fmt.Sprintf("client %d flush", id), c.Flush)
			if n := c.Unacked(); n != 0 {
				t.Errorf("client %d: %d frames unacked after successful Flush", id, n)
				return
			}
			mu.Lock()
			refS = append(refS, s...)
			refD = append(refD, d...)
			refV = append(refV, v...)
			mu.Unlock()
		}(id)
	}

	// The chaos schedule: SIGKILL the server mid-stream, restart it on
	// the same address and directory, twice. The relay's upstream redial
	// bridges each gap.
	for _, delay := range killDelays {
		time.Sleep(delay)
		procMu.Lock()
		proc.Process.Kill()
		proc.Wait()
		proc, _ = spawnServe(t, bin, append([]string{"-addr", addr}, args...)...)
		procMu.Unlock()
	}

	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Graceful stop, then recover the directory in-process: the state
	// must be the exact union of every client's stream.
	procMu.Lock()
	proc.Process.Signal(os.Interrupt)
	if err := proc.Wait(); err != nil {
		procMu.Unlock()
		t.Fatalf("server exited uncleanly: %v", err)
	}
	alive = false
	procMu.Unlock()

	rec, err := hhgb.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	ref, err := hhgb.New(e2eDim)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.UpdateWeighted(refS, refD, refV); err != nil {
		t.Fatal(err)
	}
	assertFlatState(t, rec, ref)
}
