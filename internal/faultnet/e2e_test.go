package faultnet_test

import (
	"bufio"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hhgb"
	"hhgb/hhgbclient"
	"hhgb/internal/faultnet"
	"hhgb/internal/server"
)

// The end-to-end exactly-once proof: a client streams a known edge list
// through the faultnet relay while the transport misbehaves on a script —
// cuts, blackholed acks, duplicated frames, torn frames, and a SIGKILL'd
// durable server — and the matrix that comes out the other side must be
// bit-identical to a reference fed the same list once. Zero lost, zero
// doubled, flat and windowed.

const (
	e2eDim  = uint64(1) << 20
	e2ePer  = 32                   // entries per batch == client flush threshold: one frame per batch
	e2eBase = int64(1_700_000_000) // windowed event-time origin, unix seconds
	e2eStep = 300 * time.Millisecond
	e2eWin  = time.Second
)

// batchFor derives batch b of a client-unique deterministic stream.
func batchFor(id, b int) (src, dst, wgt []uint64) {
	src = make([]uint64, e2ePer)
	dst = make([]uint64, e2ePer)
	wgt = make([]uint64, e2ePer)
	for k := range src {
		x := uint64(id)<<32 | uint64(b*e2ePer+k)
		src[k] = (x * 2654435761) % e2eDim
		dst[k] = (x*2246822519 + 3) % e2eDim
		wgt[k] = uint64(k%7 + 1)
	}
	return src, dst, wgt
}

// batchTime is the event time of batch b (windowed streams).
func batchTime(b int) time.Time {
	return time.Unix(e2eBase, 0).Add(time.Duration(b) * e2eStep)
}

// retryOp drives op through transient faults: with auto-reconnect on the
// client, an error only means the reconnect itself has not landed yet.
func retryOp(t *testing.T, what string, op func() error) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := op()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never recovered: %v", what, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertFlatState compares a sharded matrix bit-for-bit with a flat
// reference: full iteration plus the summary.
func assertFlatState(t *testing.T, got *hhgb.Sharded, want *hhgb.TrafficMatrix) {
	t.Helper()
	type cell struct{ s, d, v uint64 }
	var g, w []cell
	if err := got.Do(func(s, d, v uint64) bool { g = append(g, cell{s, d, v}); return true }); err != nil {
		t.Fatal(err)
	}
	if err := want.Do(func(s, d, v uint64) bool { w = append(w, cell{s, d, v}); return true }); err != nil {
		t.Fatal(err)
	}
	if len(g) != len(w) {
		t.Fatalf("entry count %d != reference %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("entry %d: %+v != reference %+v", i, g[i], w[i])
		}
	}
	gs, err := got.Summary()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := want.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if gs != ws {
		t.Fatalf("summary %+v != reference %+v", gs, ws)
	}
}

// assertWindowedState compares a window store against a reference store
// fed the identical timestamped stream: all-time entry count, packet
// total, summary, and spot lookups over the streamed pairs.
func assertWindowedState(t *testing.T, got, want *hhgb.Windowed, refS, refD []uint64) {
	t.Helper()
	gv, err := got.AllTime()
	if err != nil {
		t.Fatal(err)
	}
	wv, err := want.AllTime()
	if err != nil {
		t.Fatal(err)
	}
	ge, err := gv.Entries()
	if err != nil {
		t.Fatal(err)
	}
	we, err := wv.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if ge != we {
		t.Fatalf("all-time entries %d != reference %d", ge, we)
	}
	gp, err := gv.TotalPackets()
	if err != nil {
		t.Fatal(err)
	}
	wp, err := wv.TotalPackets()
	if err != nil {
		t.Fatal(err)
	}
	if gp != wp {
		t.Fatalf("all-time packets %d != reference %d", gp, wp)
	}
	gsum, err := gv.Summary()
	if err != nil {
		t.Fatal(err)
	}
	wsum, err := wv.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if gsum != wsum {
		t.Fatalf("all-time summary %+v != reference %+v", gsum, wsum)
	}
	for i := 0; i < len(refS); i += 53 {
		wantV, wantF, err := wv.Lookup(refS[i], refD[i])
		if err != nil {
			t.Fatal(err)
		}
		gotV, gotF, err := gv.Lookup(refS[i], refD[i])
		if err != nil || gotV != wantV || gotF != wantF {
			t.Fatalf("Lookup(%d,%d) = %d,%v,%v; want %d,%v", refS[i], refD[i], gotV, gotF, err, wantV, wantF)
		}
	}
}

// TestFaultInjectionExactlyOnce is the relay table test: each case scripts
// one transport fault, the client streams 20 deterministic batches with a
// final Flush, and the server matrix must equal the reference exactly.
func TestFaultInjectionExactlyOnce(t *testing.T) {
	cases := []struct {
		name     string
		script   []faultnet.ConnPlan
		minConns int // proves the fault actually forced a reconnect
		wantDups bool
	}{
		// Frame 1 is the Hello; inserts follow one frame per batch. Pure
		// cuts — even with blackholed acks — produce no duplicate frames:
		// the reconnect Welcome reports the accepted frontier and the ring
		// trims to it, so only never-received frames retransmit. Dup drops
		// appear only when the transport itself duplicates (here) or when
		// a durable server's reported frontier trails what its WAL replay
		// restored (the kill -9 test below).
		{"cut-mid-stream", []faultnet.ConnPlan{{CutAfterC2SFrames: 5}}, 2, false},
		{"blackhole-acks", []faultnet.ConnPlan{{BlackholeS2CAfter: 3, CutAfterC2SFrames: 9}}, 2, false},
		{"duplicate-delivery", []faultnet.ConnPlan{{DuplicateC2SFrame: 4}}, 1, true},
		{"truncate-mid-frame", []faultnet.ConnPlan{{TruncateC2SFrame: 6}}, 2, false},
		{"double-cut", []faultnet.ConnPlan{{CutAfterC2SFrames: 4}, {CutAfterC2SFrames: 3}}, 3, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := hhgb.NewSharded(e2eDim, hhgb.WithShards(2))
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			srv, err := server.New(server.Config{Matrix: m})
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ln)
			defer srv.Close()
			relay, err := faultnet.New(ln.Addr().String(), tc.script)
			if err != nil {
				t.Fatal(err)
			}
			defer relay.Close()

			c, err := hhgbclient.Dial(relay.Addr(), hhgbclient.WithReconnect(),
				hhgbclient.WithFlushEntries(e2ePer), hhgbclient.WithFlushInterval(0))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			var refS, refD, refW []uint64
			for b := 0; b < 20; b++ {
				s, d, w := batchFor(1, b)
				retryOp(t, "append", func() error { return c.AppendWeighted(s, d, w) })
				refS = append(refS, s...)
				refD = append(refD, d...)
				refW = append(refW, w...)
			}
			retryOp(t, "flush", c.Flush)
			if n := c.Unacked(); n != 0 {
				t.Fatalf("%d frames unacked after successful Flush", n)
			}

			ref, err := hhgb.New(e2eDim)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.UpdateWeighted(refS, refD, refW); err != nil {
				t.Fatal(err)
			}
			assertFlatState(t, m, ref)

			if got := relay.Conns(); got < tc.minConns {
				t.Fatalf("relay saw %d connections; the scripted fault should force at least %d", got, tc.minConns)
			}
			if stats := srv.Stats(); tc.wantDups && stats.DuplicatesDropped == 0 {
				t.Fatalf("no duplicates dropped; the fault should have forced a retransmit overlap (stats %+v)", stats)
			}
		})
	}
}

// TestFaultInjectionExactlyOnceWindowed reruns the cut fault against a
// windowed server: retransmitted frames land in their original windows
// (sealed ones recognize replayed seqs instead of re-applying).
func TestFaultInjectionExactlyOnceWindowed(t *testing.T) {
	wm, err := hhgb.NewWindowed(e2eDim, e2eWin, hhgb.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer wm.Close()
	srv, err := server.New(server.Config{Windowed: wm})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	relay, err := faultnet.New(ln.Addr().String(),
		[]faultnet.ConnPlan{{BlackholeS2CAfter: 3, CutAfterC2SFrames: 8}, {CutAfterC2SFrames: 5}})
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	c, err := hhgbclient.Dial(relay.Addr(), hhgbclient.WithReconnect(),
		hhgbclient.WithFlushEntries(e2ePer), hhgbclient.WithFlushInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ref, err := hhgb.NewWindowed(e2eDim, e2eWin)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	var refS, refD []uint64
	for b := 0; b < 20; b++ {
		s, d, w := batchFor(2, b)
		ts := batchTime(b)
		retryOp(t, "append", func() error { return c.AppendWeightedAt(ts, s, d, w) })
		if err := ref.AppendWeighted(ts, s, d, w); err != nil {
			t.Fatal(err)
		}
		refS = append(refS, s...)
		refD = append(refD, d...)
	}
	retryOp(t, "flush", c.Flush)
	if n := c.Unacked(); n != 0 {
		t.Fatalf("%d frames unacked after successful Flush", n)
	}
	assertWindowedState(t, wm, ref, refS, refD)
	if got := relay.Conns(); got < 3 {
		t.Fatalf("relay saw %d connections; the scripted faults should force at least 3", got)
	}
}

// buildServe compiles cmd/hhgb-serve once per test.
func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hhgb-serve")
	out, err := exec.Command("go", "build", "-o", bin, "hhgb/cmd/hhgb-serve").CombinedOutput()
	if err != nil {
		t.Fatalf("building hhgb-serve: %v\n%s", err, out)
	}
	return bin
}

// spawnServe starts hhgb-serve and waits for its listening line.
func spawnServe(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			go func() { // keep draining so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			return cmd, a
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("server never reported its address (scan err %v)", sc.Err())
	return nil, ""
}

// TestKillNineMidStreamExactlyOnce SIGKILLs a durable hhgb-serve while
// the stream is in flight — unacked and un-fsynced frames on the wire —
// restarts it on the same address and directory, and requires the
// recovered matrix to hold the full sent stream exactly once. The client
// reconnects through a transparent faultnet relay, which absorbs the
// restart gap by redialing the upstream.
func TestKillNineMidStreamExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill -9 test in -short mode")
	}
	bin := buildServe(t)
	t.Run("flat", func(t *testing.T) { killMidStream(t, bin, false) })
	t.Run("windowed", func(t *testing.T) { killMidStream(t, bin, true) })
}

func killMidStream(t *testing.T, bin string, windowed bool) {
	dir := filepath.Join(t.TempDir(), "state")
	args := []string{"-scale", "20", "-shards", "2", "-durable", dir, "-sync-every", "4"}
	if windowed {
		args = append(args, "-window", e2eWin.String())
	}
	proc, addr := spawnServe(t, bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	alive := true
	defer func() {
		if alive {
			proc.Process.Kill()
			proc.Wait()
		}
	}()
	relay, err := faultnet.New(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	c, err := hhgbclient.Dial(relay.Addr(), hhgbclient.WithReconnect(),
		hhgbclient.WithFlushEntries(e2ePer), hhgbclient.WithFlushInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Durable() {
		t.Fatal("server did not report durability")
	}

	var refW *hhgb.Windowed
	if windowed {
		if refW, err = hhgb.NewWindowed(e2eDim, e2eWin); err != nil {
			t.Fatal(err)
		}
		defer refW.Close()
	}
	var refS, refD, refV []uint64
	sendBatch := func(b int) {
		s, d, w := batchFor(3, b)
		if windowed {
			ts := batchTime(b)
			retryOp(t, "append", func() error { return c.AppendWeightedAt(ts, s, d, w) })
			if err := refW.AppendWeighted(ts, s, d, w); err != nil {
				t.Fatal(err)
			}
		} else {
			retryOp(t, "append", func() error { return c.AppendWeighted(s, d, w) })
		}
		refS = append(refS, s...)
		refD = append(refD, d...)
		refV = append(refV, w...)
	}

	// First half: never flushed, so on this durable server every frame is
	// still in the retransmit ring and the WAL tail is un-fsynced.
	for b := 0; b < 10; b++ {
		sendBatch(b)
	}
	if err := proc.Process.Kill(); err != nil { // SIGKILL: no drain, no checkpoint
		t.Fatal(err)
	}
	proc.Wait()
	alive = false

	// Same address, same directory: the restart recovers the durable
	// prefix and the session table, then the client's resumed session
	// retransmits everything in doubt.
	proc, _ = spawnServe(t, bin, append([]string{"-addr", addr}, args...)...)
	alive = true
	defer func() {
		if alive {
			proc.Process.Kill()
			proc.Wait()
		}
	}()
	for b := 10; b < 20; b++ {
		sendBatch(b)
	}
	retryOp(t, "flush", c.Flush)
	if n := c.Unacked(); n != 0 {
		t.Fatalf("%d frames unacked after successful Flush", n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Graceful stop releases the directory; recover it in-process and
	// compare against the full sent stream.
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proc.Wait(); err != nil {
		t.Fatalf("server exited uncleanly after SIGTERM: %v", err)
	}
	alive = false

	if windowed {
		rec, err := hhgb.RecoverWindowed(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		assertWindowedState(t, rec, refW, refS, refD)
		return
	}
	rec, err := hhgb.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	ref, err := hhgb.New(e2eDim)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.UpdateWeighted(refS, refD, refV); err != nil {
		t.Fatal(err)
	}
	assertFlatState(t, rec, ref)
}
