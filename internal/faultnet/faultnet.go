// Package faultnet is a test-only deterministic fault-injecting TCP
// relay for the hhgb wire protocol. It sits between an hhgbclient and a
// server, parses the byte stream at frame granularity (uvarint length ‖
// kind ‖ body — it never interprets bodies), and executes a scripted
// fault on each connection: cut after the Nth client→server frame,
// blackhole server→client frames (acks vanish while inserts keep
// landing), deliver a client→server frame twice, or tear a frame mid-
// byte and sever. Because the script is indexed by connection order and
// counts frames — not bytes or wall time — a given (script, stream) pair
// replays the identical fault every run, which is what lets the
// exactly-once end-to-end tests assert bit-identical recovery instead of
// "mostly survived".
//
// The relay redials a vanished upstream with retries, so a test can
// SIGKILL the real server and restart it on the same address while
// clients reconnect through the relay.
package faultnet

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrame mirrors proto.MaxFrame (not imported: the relay is protocol-
// shape-only) — a larger length prefix means the stream is torn or
// hostile, and the relay severs rather than buffering it.
const maxFrame = 1 << 24

// ConnPlan scripts the faults for one relayed connection. The zero value
// is a transparent relay. Frame counts are 1-based and count only the
// direction they name; the client's Hello is client→server frame 1.
type ConnPlan struct {
	// CutAfterC2SFrames severs both directions immediately after relaying
	// this many client→server frames (0 = never).
	CutAfterC2SFrames int
	// BlackholeS2CAfter silently drops every server→client frame after
	// this many have been relayed (0 = relay all). Inserts keep flowing
	// upstream while their acks vanish — the sharpest dedup test, since
	// the server applied frames the client still holds in doubt.
	BlackholeS2CAfter int
	// DuplicateC2SFrame delivers this client→server frame twice, back to
	// back (0 = none): duplicate delivery without any disconnect.
	DuplicateC2SFrame int
	// TruncateC2SFrame relays only the first half of this client→server
	// frame's bytes and then severs both directions (0 = none): the
	// server sees a frame torn mid-byte.
	TruncateC2SFrame int
}

// Relay is a fault-injecting TCP relay in front of one upstream address.
// Connection i (in accept order) runs Script[i]; connections beyond the
// script relay transparently.
type Relay struct {
	ln       net.Listener
	upstream string
	script   []ConnPlan

	mu    sync.Mutex
	conns int
	open  map[net.Conn]struct{}
	wg    sync.WaitGroup
}

// New starts a relay listening on a fresh loopback port in front of
// upstream. Close it when done.
func New(upstream string, script []ConnPlan) (*Relay, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	r := &Relay{ln: ln, upstream: upstream, script: script, open: map[net.Conn]struct{}{}}
	r.wg.Add(1)
	go r.serve()
	return r, nil
}

// Addr returns the address clients should dial.
func (r *Relay) Addr() string { return r.ln.Addr().String() }

// Conns returns how many connections the relay has accepted.
func (r *Relay) Conns() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.conns
}

// Close stops accepting, severs every live relayed connection, and waits
// for the relay goroutines to drain.
func (r *Relay) Close() error {
	err := r.ln.Close()
	r.mu.Lock()
	for c := range r.open {
		c.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
	return err
}

func (r *Relay) serve() {
	defer r.wg.Done()
	for {
		down, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.mu.Lock()
		var plan ConnPlan
		if r.conns < len(r.script) {
			plan = r.script[r.conns]
		}
		r.conns++
		r.open[down] = struct{}{}
		r.mu.Unlock()
		r.wg.Add(1)
		go r.relay(down, plan)
	}
}

// dialUpstream retries for a while: between a SIGKILL and the restart
// the upstream address refuses connections, and the whole point of the
// relay is to keep reconnecting clients alive across that gap.
func (r *Relay) dialUpstream() (net.Conn, error) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		up, err := net.DialTimeout("tcp", r.upstream, time.Second)
		if err == nil {
			return up, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (r *Relay) relay(down net.Conn, plan ConnPlan) {
	defer r.wg.Done()
	defer r.forget(down)
	up, err := r.dialUpstream()
	if err != nil {
		down.Close()
		return
	}
	defer r.forget(up)
	r.mu.Lock()
	r.open[up] = struct{}{}
	r.mu.Unlock()

	var sever sync.Once
	cut := func() {
		sever.Do(func() {
			down.Close()
			up.Close()
		})
	}
	var pair sync.WaitGroup
	pair.Add(2)
	go func() { // client → server: the scripted direction
		defer pair.Done()
		defer cut()
		br := bufio.NewReaderSize(down, 1<<16)
		frames := 0
		for {
			hdr, payload, err := readFrame(br)
			if err != nil {
				return
			}
			frames++
			whole := append(hdr, payload...)
			if plan.TruncateC2SFrame == frames {
				up.Write(whole[:len(whole)/2]) // torn mid-frame, then gone
				return
			}
			if _, err := up.Write(whole); err != nil {
				return
			}
			if plan.DuplicateC2SFrame == frames {
				if _, err := up.Write(whole); err != nil {
					return
				}
			}
			if plan.CutAfterC2SFrames == frames {
				return
			}
		}
	}()
	go func() { // server → client: acks and query responses
		defer pair.Done()
		defer cut()
		br := bufio.NewReaderSize(up, 1<<16)
		frames := 0
		for {
			hdr, payload, err := readFrame(br)
			if err != nil {
				return
			}
			frames++
			if plan.BlackholeS2CAfter > 0 && frames > plan.BlackholeS2CAfter {
				continue // the ack vanishes; keep draining upstream
			}
			if _, err := down.Write(append(hdr, payload...)); err != nil {
				return
			}
		}
	}()
	pair.Wait()
	cut()
}

func (r *Relay) forget(c net.Conn) {
	c.Close()
	r.mu.Lock()
	delete(r.open, c)
	r.mu.Unlock()
}

// readFrame reads one wire frame and returns its raw header (the uvarint
// length prefix, verbatim) and payload (kind byte + body).
func readFrame(br *bufio.Reader) (hdr, payload []byte, err error) {
	var length uint64
	var shift uint
	for {
		b, err := br.ReadByte()
		if err != nil {
			return nil, nil, err
		}
		hdr = append(hdr, b)
		length |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		shift += 7
		if shift > 63 {
			return nil, nil, fmt.Errorf("faultnet: varint overflow")
		}
	}
	if length == 0 || length > maxFrame {
		return nil, nil, fmt.Errorf("faultnet: frame length %d out of range", length)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, nil, err
	}
	return hdr, payload, nil
}
