package hhgb_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"hhgb"
)

// streamInto feeds the same deterministic weighted stream to any updater.
type updater interface {
	UpdateWeighted(src, dst, weight []uint64) error
}

func feedStream(t *testing.T, u updater, batches, size int) {
	t.Helper()
	// Deterministic pseudo-stream with supernodes and repeats, exercising
	// both accumulation and distinct-entry growth.
	state := uint64(0x243f6a8885a308d3)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for b := 0; b < batches; b++ {
		src := make([]uint64, size)
		dst := make([]uint64, size)
		w := make([]uint64, size)
		for i := range src {
			src[i] = next() % 1000
			dst[i] = next() % 1000
			w[i] = 1 + next()%4
		}
		if err := u.UpdateWeighted(src, dst, w); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedMatchesTrafficMatrix verifies the headline equivalence: every
// query of the sharded matrix is identical to the unsharded TrafficMatrix
// over the same stream.
func TestShardedMatchesTrafficMatrix(t *testing.T) {
	const dim = 1 << 20
	tm, err := hhgb.New(dim)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := hhgb.NewSharded(dim, hhgb.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	feedStream(t, tm, 10, 300)
	feedStream(t, sm, 10, 300)

	tSum, err := tm.Summary()
	if err != nil {
		t.Fatal(err)
	}
	sSum, err := sm.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if tSum != sSum {
		t.Fatalf("summaries differ:\n  flat    %+v\n  sharded %+v", tSum, sSum)
	}

	// The pushdown top-k uses the same total order as the flat path
	// (value desc, ties by lower id), so IDs must match exactly too.
	tTop, err := tm.TopSources(5)
	if err != nil {
		t.Fatal(err)
	}
	sTop, err := sm.TopSources(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tTop) != len(sTop) {
		t.Fatalf("top-k lengths differ: %d vs %d", len(tTop), len(sTop))
	}
	for i := range tTop {
		if tTop[i] != sTop[i] {
			t.Fatalf("top source %d differs: %+v vs %+v", i, tTop[i], sTop[i])
		}
	}
	tDst, err := tm.TopDestinations(5)
	if err != nil {
		t.Fatal(err)
	}
	sDst, err := sm.TopDestinations(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tDst) != len(sDst) {
		t.Fatalf("top destinations lengths differ: %d vs %d", len(tDst), len(sDst))
	}
	for i := range tDst {
		if tDst[i] != sDst[i] {
			t.Fatalf("top destination %d differs: %+v vs %+v", i, tDst[i], sDst[i])
		}
	}

	// Spot-check lookups across the whole flat matrix.
	if err := tm.Do(func(src, dst, packets uint64) bool {
		v, ok, err := sm.Lookup(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != packets {
			t.Fatalf("sharded Lookup(%d,%d) = %d,%v; want %d,true", src, dst, v, ok, packets)
		}
		return src < 50 // bound the quadratic-ish check
	}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedConcurrentIngest(t *testing.T) {
	sm, err := hhgb.NewSharded(1<<20, hhgb.WithShards(3), hhgb.WithQueueDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	const producers = 6
	const perProducer = 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			src := make([]uint64, perProducer)
			dst := make([]uint64, perProducer)
			for i := range src {
				src[i] = uint64(p*perProducer + i)
				dst[i] = uint64(i % 97)
			}
			if err := sm.Update(src, dst); err != nil {
				t.Error(err)
			}
		}(p)
	}
	wg.Wait()
	if err := sm.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := sm.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(producers * perProducer); sum.TotalPackets != want {
		t.Fatalf("TotalPackets = %d, want %d", sum.TotalPackets, want)
	}
	if sum.Entries != producers*perProducer {
		t.Fatalf("Entries = %d, want %d (all pairs distinct)", sum.Entries, producers*perProducer)
	}
	st := sm.Stats()
	if st.Updates != int64(producers*perProducer) {
		t.Fatalf("merged Updates = %d, want %d", st.Updates, producers*perProducer)
	}
	// Per-shard counters partition the merged ones.
	var perShard int64
	for _, s := range sm.ShardStats() {
		perShard += s.Updates
	}
	if perShard != st.Updates {
		t.Fatalf("shard stats sum to %d, merged says %d", perShard, st.Updates)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sm.Update([]uint64{1}, []uint64{2}); err == nil {
		t.Fatal("Update after Close should fail")
	}
	// Still queryable after Close.
	if _, err := sm.Entries(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedOptionValidation(t *testing.T) {
	if _, err := hhgb.New(1<<16, hhgb.WithShards(4)); err == nil {
		t.Fatal("New should reject WithShards")
	}
	if _, err := hhgb.New(1<<16, hhgb.WithQueueDepth(4)); err == nil {
		t.Fatal("New should reject WithQueueDepth")
	}
	if _, err := hhgb.New(1<<16, hhgb.WithHandoff(64)); err == nil {
		t.Fatal("New should reject WithHandoff")
	}
	if _, err := hhgb.NewSharded(1<<16, hhgb.WithShards(0)); err == nil {
		t.Fatal("WithShards(0) should fail")
	}
	if _, err := hhgb.NewSharded(1<<16, hhgb.WithQueueDepth(0)); err == nil {
		t.Fatal("WithQueueDepth(0) should fail")
	}
	if _, err := hhgb.NewSharded(1<<16, hhgb.WithHandoff(0)); err == nil {
		t.Fatal("WithHandoff(0) should fail")
	}
	sm, err := hhgb.NewSharded(1<<16, hhgb.WithShards(5), hhgb.WithGeometricCuts(3, 64, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	if sm.Shards() != 5 {
		t.Fatalf("Shards() = %d, want 5", sm.Shards())
	}
	if sm.Levels() != 3 {
		t.Fatalf("Levels() = %d, want 3", sm.Levels())
	}
	if sm.Dim() != 1<<16 {
		t.Fatalf("Dim() = %d, want %d", sm.Dim(), 1<<16)
	}
	if err := sm.Update([]uint64{1, 2}, []uint64{3}); err == nil {
		t.Fatal("mismatched Update lengths should fail")
	}
	if err := sm.UpdateWeighted([]uint64{1}, []uint64{3}, []uint64{1, 2}); err == nil {
		t.Fatal("mismatched UpdateWeighted lengths should fail")
	}
}

// TestShardedDoOrdering checks Do visits the merged matrix in row-major
// order like TrafficMatrix.Do.
func TestShardedDoOrdering(t *testing.T) {
	sm, err := hhgb.NewSharded(1<<16, hhgb.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	src := []uint64{9, 3, 7, 3, 1}
	dst := []uint64{1, 5, 2, 4, 8}
	if err := sm.Update(src, dst); err != nil {
		t.Fatal(err)
	}
	var visited []uint64
	if err := sm.Do(func(s, d, p uint64) bool {
		visited = append(visited, s<<32|d)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(visited) != 5 {
		t.Fatalf("visited %d entries, want 5", len(visited))
	}
	if !sort.SliceIsSorted(visited, func(i, j int) bool { return visited[i] < visited[j] }) {
		t.Fatalf("Do order not row-major: %v", visited)
	}
}

// TestShardedAppendLifecycle pins the documented lifecycle: Append (and
// Update, its alias) fails with the ErrClosed sentinel after Close, Close
// is idempotent, and the matrix stays queryable.
func TestShardedAppendLifecycle(t *testing.T) {
	sm, err := hhgb.NewSharded(1<<20, hhgb.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Append([]uint64{1, 2}, []uint64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sm.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := sm.Append([]uint64{9}, []uint64{9}); !errors.Is(err, hhgb.ErrClosed) {
		t.Fatalf("Append after Close = %v, want hhgb.ErrClosed", err)
	}
	if err := sm.Update([]uint64{9}, []uint64{9}); !errors.Is(err, hhgb.ErrClosed) {
		t.Fatalf("Update after Close = %v, want hhgb.ErrClosed", err)
	}
	if err := sm.AppendWeighted([]uint64{9}, []uint64{9}, []uint64{1}); !errors.Is(err, hhgb.ErrClosed) {
		t.Fatalf("AppendWeighted after Close = %v, want hhgb.ErrClosed", err)
	}
	if _, err := sm.NewAppender(); !errors.Is(err, hhgb.ErrClosed) {
		t.Fatalf("NewAppender after Close = %v, want hhgb.ErrClosed", err)
	}
	if n, err := sm.Entries(); err != nil || n != 2 {
		t.Fatalf("Entries after Close = %d, %v; want 2, nil", n, err)
	}
	if v, ok, err := sm.Lookup(1, 3); err != nil || !ok || v != 1 {
		t.Fatalf("Lookup after Close = %d,%v,%v; want 1,true,nil", v, ok, err)
	}
}

// TestShardedAppenders runs one dedicated appender per producer and
// checks the result matches the same stream through plain Append calls,
// plus the appender-side ErrClosed paths.
func TestShardedAppenders(t *testing.T) {
	const producers = 4
	mk := func() *hhgb.Sharded {
		sm, err := hhgb.NewSharded(1<<20, hhgb.WithShards(3), hhgb.WithHandoff(64))
		if err != nil {
			t.Fatal(err)
		}
		return sm
	}
	viaAppend := mk()
	viaAppenders := mk()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			a, err := viaAppenders.NewAppender()
			if err != nil {
				t.Error(err)
				return
			}
			defer a.Close()
			src := make([]uint64, 500)
			dst := make([]uint64, 500)
			for i := range src {
				src[i] = uint64(p*1000 + i)
				dst[i] = uint64(i % 61)
			}
			if err := a.Append(src, dst); err != nil {
				t.Error(err)
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < producers; p++ {
		src := make([]uint64, 500)
		dst := make([]uint64, 500)
		for i := range src {
			src[i] = uint64(p*1000 + i)
			dst[i] = uint64(i % 61)
		}
		if err := viaAppend.Append(src, dst); err != nil {
			t.Fatal(err)
		}
	}
	aSum, err := viaAppenders.Summary()
	if err != nil {
		t.Fatal(err)
	}
	uSum, err := viaAppend.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if aSum != uSum {
		t.Fatalf("appender stream summary %+v differs from Append stream %+v", aSum, uSum)
	}

	a, err := viaAppenders.NewAppender()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]uint64{5}, []uint64{6}); err != nil {
		t.Fatal(err)
	}
	if a.Buffered() != 1 {
		t.Fatalf("Buffered = %d, want 1", a.Buffered())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]uint64{1}, []uint64{1}); !errors.Is(err, hhgb.ErrClosed) {
		t.Fatalf("Append after appender Close = %v, want hhgb.ErrClosed", err)
	}
	// The buffered entry was handed off on Close.
	if v, ok, err := viaAppenders.Lookup(5, 6); err != nil || !ok || v != 1 {
		t.Fatalf("Lookup(5,6) = %d,%v,%v; want 1,true,nil", v, ok, err)
	}
	if err := viaAppend.Close(); err != nil {
		t.Fatal(err)
	}
	if err := viaAppenders.Close(); err != nil {
		t.Fatal(err)
	}
}

func ExampleSharded() {
	// A sharded matrix accepts concurrent batches from many collectors.
	sm, err := hhgb.NewSharded(hhgb.IPv4Space, hhgb.WithShards(4))
	if err != nil {
		panic(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c uint64) {
			defer wg.Done()
			// Every collector sees the same two flows.
			srcs := []uint64{0x0a000001, 0x0a000002}
			dsts := []uint64{0x08080808, 0x08080808}
			if err := sm.Update(srcs, dsts); err != nil {
				panic(err)
			}
		}(uint64(c))
	}
	wg.Wait()
	if err := sm.Close(); err != nil { // drain all queues
		panic(err)
	}
	sum, err := sm.Summary()
	if err != nil {
		panic(err)
	}
	fmt.Println(sum.Entries, sum.TotalPackets)
	// Output: 2 8
}

// copyDirTo snapshots a durability directory — the on-disk state a crash
// would leave — so recovery can run against it while the abandoned
// original still owns its own directory.
func copyDirTo(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestShardedDurableRecover drives the facade durability path end to end:
// durable ingest, a simulated crash (the directory state is snapshotted
// while the matrix is abandoned un-Closed), and Recover producing a matrix
// whose queries match a plain in-memory reference.
func TestShardedDurableRecover(t *testing.T) {
	dir := t.TempDir()
	sm, err := hhgb.NewSharded(1<<16,
		hhgb.WithShards(3), hhgb.WithGeometricCuts(3, 64, 4),
		hhgb.WithDurability(dir), hhgb.WithSyncEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := hhgb.New(1<<16, hhgb.WithGeometricCuts(3, 64, 4))
	if err != nil {
		t.Fatal(err)
	}
	feedStream(t, sm, 20, 500)
	feedStream(t, ref, 20, 500)
	if err := sm.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A post-checkpoint tail, made durable by Flush (group commit): the
	// recovered state must be snapshot + WAL-tail replay.
	feedStream(t, sm, 5, 500)
	if err := sm.Flush(); err != nil {
		t.Fatal(err)
	}
	feedStream(t, ref, 5, 500)
	// Crash: sm is abandoned un-Closed; recovery runs on the directory
	// state as-is (a copy, since the live abandoned matrix still owns
	// the original — a real crash would have released it).
	rm, err := hhgb.Recover(copyDirTo(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Close()
	if rm.Dim() != 1<<16 || rm.Shards() != 3 {
		t.Fatalf("recovered dim=%d shards=%d, want %d/3", rm.Dim(), rm.Shards(), 1<<16)
	}
	rs, err := rm.Summary()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := ref.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if rs != ws {
		t.Fatalf("recovered Summary %+v != reference %+v", rs, ws)
	}
	rTop, err := rm.TopSources(10)
	if err != nil {
		t.Fatal(err)
	}
	wTop, err := ref.TopSources(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wTop {
		if rTop[i] != wTop[i] {
			t.Fatalf("TopSources[%d] = %+v, want %+v", i, rTop[i], wTop[i])
		}
	}
	// The recovered matrix keeps ingesting and checkpointing.
	feedStream(t, rm, 2, 100)
	if err := rm.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	n1, err := rm.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if n1 == 0 {
		t.Fatal("recovered matrix lost its entries")
	}
}

// TestShardedDurabilityOptionValidation pins the facade-level option and
// lifecycle errors of the durability path.
func TestShardedDurabilityOptionValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := hhgb.New(1<<16, hhgb.WithDurability(dir)); err == nil {
		t.Fatal("New should reject WithDurability")
	}
	if _, err := hhgb.NewSharded(1<<16, hhgb.WithSyncEvery(4)); err == nil {
		t.Fatal("WithSyncEvery without WithDurability should fail")
	}
	if _, err := hhgb.NewSharded(1<<16, hhgb.WithDurability("")); err == nil {
		t.Fatal("WithDurability(\"\") should fail")
	}
	if _, err := hhgb.Recover(dir, hhgb.WithShards(2)); err == nil {
		t.Fatal("Recover should reject WithShards (manifest fixes it)")
	}
	if _, err := hhgb.Recover(t.TempDir()); err == nil {
		t.Fatal("Recover on an empty directory should fail")
	}
	plain, err := hhgb.NewSharded(1<<16, hhgb.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if err := plain.Checkpoint(); !errors.Is(err, hhgb.ErrNotDurable) {
		t.Fatalf("Checkpoint without durability = %v, want ErrNotDurable", err)
	}
	sm, err := hhgb.NewSharded(1<<16, hhgb.WithShards(2), hhgb.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Update([]uint64{1}, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	// A second durable matrix on the same directory must refuse.
	if _, err := hhgb.NewSharded(1<<16, hhgb.WithDurability(dir)); err == nil {
		t.Fatal("NewSharded on a live durable dir should fail")
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sm.Checkpoint(); !errors.Is(err, hhgb.ErrClosed) {
		t.Fatalf("Checkpoint after Close = %v, want ErrClosed", err)
	}
	// Closed means checkpointed: recovery needs no replay and the state
	// is intact.
	rm, err := hhgb.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rm.Close()
	if v, ok, err := rm.Lookup(1, 2); err != nil || !ok || v != 1 {
		t.Fatalf("Lookup after recover = %d,%v,%v; want 1,true,nil", v, ok, err)
	}
}
