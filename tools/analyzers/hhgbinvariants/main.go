// Command hhgbinvariants is a vet tool enforcing three repo invariants
// that the type system cannot express:
//
//   - timenow: wall-clock reads — time.Now, time.Since — are confined
//     to one allowlisted file in each clock-isolated package. The window
//     engine (import path ending internal/window) is event-time only;
//     its wall reads live in wallclock.go, whose helpers exist precisely
//     so instrumentation and eviction patience can use wall time without
//     event-time logic ever depending on it. The flight tracing plane
//     (internal/flight) stamps every event and span stage through the
//     monotonic clock in clock.go; a stray time.Now elsewhere would mix
//     wall and monotonic timestamps inside one ring.
//
//   - walwrite: the write-ahead log file (wal.Create and the Append,
//     Sync, Close, Rotate methods of wal.File) is only touched by code
//     that owns the group-commit barrier: the wal package itself and
//     internal/shard/durable.go. Any other caller could reorder appends
//     against the fsync barrier and silently break crash durability.
//
//   - hotalloc: a function marked with a //hhgb:noalloc directive is on
//     the ingest hot path and guarded by a testing.AllocsPerRun budget of
//     zero. Its body must contain no allocation sites the budget tests
//     could only catch at run time: no make or new, no heap-escaping
//     &composite literals, no closures, no append whose result lands in a
//     different variable (a guaranteed fresh backing array, where
//     self-append is the amortized-reuse idiom), and no interface boxing
//     of concrete arguments at call sites. The check is intra-procedural:
//     growth paths live in unmarked helpers, which is exactly the
//     structure the budgets enforce dynamically.
//
// Test files are exempt: the invariants guard production write paths and
// event-time purity, not test scaffolding.
//
// The command speaks the cmd/go vet tool protocol, so it runs as
//
//	go build -o hhgbinvariants ./tools/analyzers/hhgbinvariants
//	go vet -vettool=hhgbinvariants ./...
//
// Like golang.org/x/tools' unitchecker, it is invoked by the go command
// once per package with a JSON config file; unlike unitchecker it is
// pure standard library (this module has no dependencies, and its vet
// tool does not get to be the exception). Diagnostics go to stderr as
// file:line:col: message and the exit status is 2 when any are found.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"go/version"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	// The go command probes the tool before using it: -V=full asks for a
	// content-addressed version (cached vet results are keyed on it) and
	// -flags asks which analyzer flags exist (none here).
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			fmt.Printf("hhgbinvariants version devel buildID=%s\n", selfID())
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) < 2 || !strings.HasSuffix(os.Args[len(os.Args)-1], ".cfg") {
		fmt.Fprintln(os.Stderr, "usage: hhgbinvariants [-V=full] [-flags] vet.cfg")
		os.Exit(1)
	}
	diags, err := run(os.Args[len(os.Args)-1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "hhgbinvariants: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// selfID hashes the tool's own executable, so editing the checks
// invalidates the go command's cached vet results.
func selfID() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil)[:16])
			}
		}
	}
	return "unknown"
}

// vetConfig mirrors the JSON the go command writes to vet.cfg (the
// vetConfig struct in cmd/go/internal/work).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

const (
	windowSuffix = "internal/window"
	flightSuffix = "internal/flight"
	walSuffix    = "internal/wal"
	shardSuffix  = "internal/shard"
)

// timeRules maps each clock-isolated package (by import-path suffix) to
// its single allowlisted wall-clock file and the domain named in the
// diagnostic.
var timeRules = []struct {
	suffix string // package import-path suffix
	exempt string // the one file allowed to read the wall clock
	domain string // what the diagnostic calls the package
}{
	{windowSuffix, "wallclock.go", "the event-time-only window engine"},
	{flightSuffix, "clock.go", "the monotonic-clock flight recorder"},
}

func run(cfgPath string) ([]string, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	// The go command expects a facts file from every vet invocation and
	// feeds it to dependents. These checks keep no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("hhgbinvariants\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	// "pkg [pkg.test]" test variants carry the production files too;
	// strip the variant so the path suffix rules see the real package.
	pkgPath := cfg.ImportPath
	if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	timeExempt, timeDomain := "", ""
	for _, r := range timeRules {
		if pathHasSuffix(pkgPath, r.suffix) {
			timeExempt, timeDomain = r.exempt, r.domain
			break
		}
	}
	checkTime := timeExempt != ""
	// Only packages that import the wal package can touch wal.File, so
	// everything else — the vast majority, all of std included — skips
	// parsing and typechecking entirely.
	checkWAL := false
	if !pathHasSuffix(pkgPath, walSuffix) {
		for imp := range cfg.ImportMap {
			if pathHasSuffix(imp, walSuffix) {
				checkWAL = true
				break
			}
		}
	}
	// The hotalloc check applies wherever the marker appears; a raw byte
	// scan decides before paying for parse and typecheck. Only fully
	// vetted packages reach this point (dependencies exit at VetxOnly),
	// so the scan touches just the packages under vet.
	checkAlloc := false
	for _, name := range cfg.GoFiles {
		if data, err := os.ReadFile(name); err == nil && bytes.Contains(data, []byte(noallocDirective)) {
			checkAlloc = true
			break
		}
	}
	if !checkTime && !checkWAL && !checkAlloc {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution|parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	// Resolve imports the way the compiler did: ImportMap takes the
	// source import path to the resolved package path, PackageFile takes
	// that to the export data the go command already built.
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tcfg := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("cannot resolve import %q", importPath)
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return compImp.Import(path)
		}),
		Error: func(error) {}, // keep going; the first error is returned by Check
	}
	if version.IsValid(cfg.GoVersion) {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	if _, err := tcfg.Check(cfg.ImportPath, fset, files, info); err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	var diags []string
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	for _, f := range files {
		base := filepath.Base(fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(base, "_test.go") {
			continue
		}
		if checkTime && base != timeExempt {
			checkTimeNow(f, info, report, timeDomain, timeExempt)
		}
		if checkWAL && !(pathHasSuffix(pkgPath, shardSuffix) && base == "durable.go") {
			checkWALWrite(f, info, report)
		}
		if checkAlloc {
			checkHotAlloc(f, info, report)
		}
	}
	return diags, nil
}

// noallocDirective marks a function whose body must be allocation-free.
const noallocDirective = "//hhgb:noalloc"

// checkHotAlloc flags allocation sites inside //hhgb:noalloc functions.
func checkHotAlloc(f *ast.File, info *types.Info, report func(token.Pos, string, ...any)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !hasNoAllocDirective(fd.Doc) {
			continue
		}
		checkNoAllocBody(fd.Body, info, report)
	}
}

func hasNoAllocDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == noallocDirective {
			return true
		}
	}
	return false
}

func checkNoAllocBody(body *ast.BlockStmt, info *types.Info, report func(token.Pos, string, ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					if name := b.Name(); name == "make" || name == "new" {
						report(n.Pos(), "%s in a %s function: take the buffer from retained scratch or a free-list instead", name, noallocDirective)
					}
					return true
				}
			}
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			checkBoxedArgs(n, info, report)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "heap-escaping &composite literal in a %s function", noallocDirective)
				}
			}
		case *ast.FuncLit:
			report(n.Pos(), "closure in a %s function allocates its context: use a named function", noallocDirective)
			return false // the closure body has its own (unmarked) budget
		case *ast.AssignStmt:
			checkAppendTargets(n, info, report)
		}
		return true
	})
}

// checkAppendTargets flags append results assigned to a variable other
// than the one appended to: `x = append(y, ...)` with x != y is a
// guaranteed fresh backing array, where `x = append(x, ...)` only grows
// on capacity misses — the amortized-reuse idiom the budgets allow.
func checkAppendTargets(n *ast.AssignStmt, info *types.Info, report func(token.Pos, string, ...any)) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			continue
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		if types.ExprString(n.Lhs[i]) != types.ExprString(call.Args[0]) {
			report(call.Pos(), "append result assigned to a different variable in a %s function: this always allocates a fresh backing array", noallocDirective)
		}
	}
}

// checkBoxedArgs flags concrete values passed to interface parameters —
// every such conversion may heap-allocate the boxed copy. Interface-typed
// arguments (an error forwarded to an error parameter) pass unflagged.
func checkBoxedArgs(call *ast.CallExpr, info *types.Info, report func(token.Pos, string, ...any)) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // slice passed whole
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg]
		if at.Type == nil || types.IsInterface(at.Type) || at.IsNil() {
			continue
		}
		report(arg.Pos(), "concrete %s boxed into interface parameter in a %s function", at.Type, noallocDirective)
	}
}

// checkTimeNow flags wall-clock reads in clock-isolated packages.
func checkTimeNow(f *ast.File, info *types.Info, report func(token.Pos, string, ...any), domain, exempt string) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "time" {
			return true
		}
		if name := sel.Sel.Name; name == "Now" || name == "Since" {
			report(sel.Pos(), "time.%s in %s: use the %s helpers", name, domain, exempt)
		}
		return true
	})
}

// walFileMethods are the wal.File operations that move the on-disk log.
var walFileMethods = map[string]bool{"Append": true, "Sync": true, "Close": true, "Rotate": true}

// checkWALWrite flags wal.Create calls and wal.File write-side method
// uses outside the barrier-owning code.
func checkWALWrite(f *ast.File, info *types.Info, report func(token.Pos, string, ...any)) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				if pathHasSuffix(pn.Imported().Path(), walSuffix) && sel.Sel.Name == "Create" {
					report(sel.Pos(), "wal.Create outside the group-commit barrier: only %s and %s/durable.go may open the log", walSuffix, shardSuffix)
				}
				return true
			}
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.MethodVal || !walFileMethods[sel.Sel.Name] {
			return true
		}
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return true
		}
		obj := named.Obj()
		if obj.Name() == "File" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), walSuffix) {
			report(sel.Pos(), "wal.File.%s outside the group-commit barrier: only %s and %s/durable.go may write the log", sel.Sel.Name, walSuffix, shardSuffix)
		}
		return true
	})
}

// pathHasSuffix reports whether path ends with the given slash-separated
// suffix on a path-element boundary ("a/internal/wal" matches
// "internal/wal"; "a/xinternal/wal" does not).
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
