// Package wal is a stub mirroring the shape of the real repo's
// internal/wal — an embedded-Writer File with the write-side methods the
// walwrite check guards — so the fixtures exercise method resolution
// through embedding exactly as production code does. The package itself
// is allowlisted: nothing here is flagged.
package wal

// Writer buffers records.
type Writer struct {
	buf []byte
}

// Append adds one record to the buffer.
func (w *Writer) Append(rec []byte) error {
	w.buf = append(w.buf, rec...)
	return nil
}

// File is a Writer bound to a path.
type File struct {
	*Writer
	path string
}

// Create opens a log file.
func Create(path string) (*File, error) {
	return &File{Writer: &Writer{}, path: path}, nil
}

// Sync makes the buffer durable.
func (l *File) Sync() error { return nil }

// Close syncs and closes.
func (l *File) Close() error { return l.Sync() }

// Rotate closes the segment and opens a fresh one.
func (l *File) Rotate(path string) (*File, error) {
	if err := l.Close(); err != nil {
		return nil, err
	}
	return Create(path)
}
