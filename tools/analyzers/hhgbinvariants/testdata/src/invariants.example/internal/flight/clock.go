// clock.go is the flight package's allowlisted clock file: the timenow
// check must not flag anything here.
package flight

import "time"

var base = time.Now()

func monoNow() int64 { return int64(time.Since(base)) }
