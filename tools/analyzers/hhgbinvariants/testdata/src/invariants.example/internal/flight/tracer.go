// tracer.go violates the flight package's clock isolation on purpose:
// the fixture runner asserts the timenow check fires on each marked
// line. Mixing raw wall-clock reads with the monotonic base in clock.go
// would put incomparable timestamps in one event ring.
package flight

import "time"

func stamp(start time.Time) (int64, time.Duration) {
	now := time.Now()        // want `time\.Now in the monotonic-clock flight recorder`
	dur := time.Since(start) // want `time\.Since in the monotonic-clock flight recorder`
	if monoNow() > 0 {
		dur += now.Sub(start) // time.Time methods are fine; only package-level reads are flagged
	}
	return monoNow(), dur
}
