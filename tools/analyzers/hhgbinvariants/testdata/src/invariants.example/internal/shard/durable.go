// durable.go owns the group-commit barrier: every wal.File operation
// here is allowlisted and must NOT be flagged.
package shard

import "invariants.example/internal/wal"

type group struct {
	f *wal.File
}

func (g *group) open(path string) error {
	f, err := wal.Create(path)
	if err != nil {
		return err
	}
	g.f = f
	if err := g.f.Append(nil); err != nil {
		return err
	}
	return g.f.Sync()
}

func (g *group) rotate(path string) error {
	nf, err := g.f.Rotate(path)
	if err != nil {
		return err
	}
	g.f = nf
	return nil
}

func (g *group) shutdown() error { return g.f.Close() }
