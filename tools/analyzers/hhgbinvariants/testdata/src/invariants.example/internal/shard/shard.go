// shard.go is barrier-owning-package code OUTSIDE durable.go: touching
// the wal.File here bypasses the group-commit discipline and must be
// flagged, even though the sibling file may do the same calls freely.
package shard

func (g *group) flushDirect(rec []byte) error {
	if err := g.f.Append(rec); err != nil { // want `wal\.File\.Append outside the group-commit barrier`
		return err
	}
	return g.f.Sync() // want `wal\.File\.Sync outside the group-commit barrier`
}
