// wallclock.go is the allowlisted wall-clock file: the timenow check
// must not flag anything here.
package window

import "time"

func wallNow() time.Time { return time.Now() }

func wallSince(t time.Time) time.Duration { return time.Since(t) }
