// Test files are exempt from the invariants: no want markers here even
// though this uses time.Now freely.
package window

import (
	"testing"
	"time"
)

func TestSealLag(t *testing.T) {
	if sealLag(time.Now()) < 0 {
		t.Fatal("negative lag")
	}
}
