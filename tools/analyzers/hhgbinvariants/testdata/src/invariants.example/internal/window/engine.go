// engine.go violates the event-time-only invariant on purpose: the
// fixture runner asserts the timenow check fires on each marked line.
package window

import "time"

func sealLag(end time.Time) time.Duration {
	now := time.Now()      // want `time\.Now in the event-time-only window engine`
	lag := time.Since(end) // want `time\.Since in the event-time-only window engine`
	if wallSince(end) > 0 {
		lag += now.Sub(end) // time.Time methods are fine; only package-level reads are flagged
	}
	_ = wallNow()
	return lag
}
