// Package hot is the hotalloc fixture: //hhgb:noalloc-marked functions
// must be free of static allocation sites, unmarked functions may do
// anything. Each flagged line carries a `// want` marker; the clean lines
// double as the negative fixtures for the allowed idioms (self-append,
// value composite literals, interface-to-interface forwarding).
package hot

import "fmt"

type entry struct{ K, V uint64 }

type staging struct {
	rows []uint64
	tmp  entry
}

//hhgb:noalloc
func (s *staging) stage(rows []uint64) {
	s.rows = append(s.rows, rows...) // self-append: amortized reuse, allowed
	s.tmp = entry{K: 1, V: 2}        // value composite literal: allowed
	fresh := make([]uint64, 8)       // want `make in a //hhgb:noalloc function`
	_ = fresh
	boxed := new(entry) // want `new in a //hhgb:noalloc function`
	_ = boxed
	escaped := &entry{K: 3} // want `heap-escaping &composite literal`
	_ = escaped
	grown := append(rows, 9) // want `append result assigned to a different variable`
	_ = grown
	fmt.Println(rows[0]) // want `concrete uint64 boxed into interface parameter`
}

//hhgb:noalloc
func closures(run func()) {
	run()                        // calling a func parameter is fine
	deferred := func() { run() } // want `closure in a //hhgb:noalloc function`
	deferred()
}

//hhgb:noalloc
func forwardErr(err error) error {
	return describe(err) // interface-to-interface: no boxing, allowed
}

func describe(err error) error { return err }

// unmarked is outside the directive's reach: every idiom above is fine.
func unmarked() []uint64 {
	out := make([]uint64, 0, 4)
	out = append(out, 1)
	other := append(out, 2)
	fmt.Println(&entry{K: 1}, other)
	return other
}
