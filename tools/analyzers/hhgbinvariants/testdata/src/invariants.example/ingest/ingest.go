// Package ingest is an unrelated package reaching into the log: every
// touch point — the constructor, a method value, a deferred call — must
// be flagged.
package ingest

import "invariants.example/internal/wal"

func Open(path string) error {
	f, err := wal.Create(path) // want `wal\.Create outside the group-commit barrier`
	if err != nil {
		return err
	}
	sync := f.Sync  // want `wal\.File\.Sync outside the group-commit barrier`
	defer f.Close() // want `wal\.File\.Close outside the group-commit barrier`
	return sync()
}
