module invariants.example

go 1.24
