package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestFixtures drives the tool the way CI does — go vet -vettool over a
// real module — against testdata/src/invariants.example, whose files
// carry analysistest-style `// want `+"`regexp`"+` markers on the lines
// that must be flagged. The comparison is exact in both directions:
// every marker must produce a matching diagnostic, and every diagnostic
// must land on a marked line. Files without markers (the allowlisted
// wallclock.go, durable.go, the wal stub, the exempt _test.go) double as
// the negative fixtures.
func TestFixtures(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("no go tool on PATH: %v", err)
	}
	tool := filepath.Join(t.TempDir(), "hhgbinvariants")
	build := exec.Command(goTool, "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building tool: %v\n%s", err, out)
	}

	fixdir, err := filepath.Abs(filepath.Join("testdata", "src", "invariants.example"))
	if err != nil {
		t.Fatal(err)
	}
	vet := exec.Command(goTool, "vet", "-vettool="+tool, "./...")
	vet.Dir = fixdir
	vet.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=", "GO111MODULE=on")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Errorf("go vet exited 0 over fixtures that contain violations:\n%s", out)
	}

	got := parseDiags(t, out)
	want := collectWant(t, fixdir)

	for key, re := range want {
		msg, ok := got[key]
		if !ok {
			t.Errorf("no diagnostic at %s (want match for %q)", key, re)
			continue
		}
		if !regexp.MustCompile(re).MatchString(msg) {
			t.Errorf("diagnostic at %s = %q, want match for %q", key, msg, re)
		}
		delete(got, key)
	}
	for key, msg := range got {
		t.Errorf("unexpected diagnostic at %s: %q", key, msg)
	}
}

// parseDiags extracts file:line keyed diagnostics from go vet output,
// keying by basename so absolute/relative path rewriting by the go
// command cannot break the comparison (fixture basenames are unique).
func parseDiags(t *testing.T, out []byte) map[string]string {
	t.Helper()
	diagRE := regexp.MustCompile(`^(.*\.go):(\d+):\d+: (.*)$`)
	got := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || strings.TrimSpace(line) == "" {
			continue
		}
		m := diagRE.FindStringSubmatch(line)
		if m == nil {
			// "exit status 2"-style trailers and anything unexpected.
			if !strings.HasPrefix(line, "exit status") {
				t.Errorf("unparseable vet output line: %q", line)
			}
			continue
		}
		key := filepath.Base(m[1]) + ":" + m[2]
		if prev, dup := got[key]; dup {
			t.Errorf("two diagnostics on %s: %q and %q", key, prev, m[3])
		}
		got[key] = m[3]
	}
	return got
}

// collectWant scans the fixture tree for `// want `+"`re`"+` markers,
// returning basename:line → expected-message regexp.
func collectWant(t *testing.T, dir string) map[string]string {
	t.Helper()
	wantRE := regexp.MustCompile("// want `([^`]+)`")
	want := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := filepath.Base(path) + ":" + strconv.Itoa(i+1)
			if _, dup := want[key]; dup {
				return fmt.Errorf("%s: one want marker per line", key)
			}
			want[key] = m[1]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no want markers found under testdata — fixture tree missing?")
	}
	return want
}
