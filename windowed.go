package hhgb

import (
	"fmt"
	"time"

	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/shard"
	"hhgb/internal/window"
)

// ErrLate is returned (wrapped; test with errors.Is) by Windowed.Append
// when the batch's timestamp falls behind the seal frontier: the window
// that would hold it has already sealed. The batch was not applied;
// WindowStats.LateDrops counts the refused entries.
var ErrLate = window.ErrLate

// Windowed is a temporal traffic matrix: the insert stream is partitioned
// into fixed-duration event-time windows, each backed by its own sharded
// hierarchical cascade, with an optional roll-up hierarchy (sealed fine
// windows summed into coarser epochs — 1s → 1m → 1h with
// WithRollUps(60, 60)), per-level retention, and live per-window seal
// summaries via Subscribe. Time-range queries touch only the windows
// covering the range and answer bit-identically to a flat matrix holding
// exactly that range's traffic.
//
//	wm, _ := hhgb.NewWindowed(hhgb.IPv4Space, time.Second, hhgb.WithRollUps(60))
//	_ = wm.Append(pktTime, srcs, dsts)          // routed by event time
//	r, _ := wm.QueryRange(t0, t1)               // only windows in [t0, t1)
//	top, _ := r.TopSources(10)
//
// Windows seal when the event-time watermark passes their end by
// WithLateness (and on explicit Seal); sealing stops the window's ingest
// workers (it stays fully queryable), publishes its summary to every
// subscription, and — with WithDurability — takes its final checkpoint.
// All methods are safe for concurrent use.
type Windowed struct {
	s   *window.Store[uint64]
	dim uint64
}

// NewWindowed returns an empty windowed dim x dim traffic matrix with the
// given level-0 window duration. Options: WithRollUps, WithRetentions,
// WithLateness, plus the Sharded family (WithShards, WithQueueDepth,
// WithHandoff, WithCuts, WithGeometricCuts, WithDurability,
// WithSyncEvery) applied to every window's cascade group.
func NewWindowed(dim uint64, windowDur time.Duration, opts ...Option) (*Windowed, error) {
	o := options{cuts: hier.DefaultConfig().Cuts}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.syncEvery != 0 && o.durDir == "" {
		return nil, fmt.Errorf("%w: WithSyncEvery requires WithDurability", gb.ErrInvalidValue)
	}
	s, err := window.New[uint64](gb.Index(dim), gb.Index(dim), window.Config{
		Window:     windowDur,
		RollUps:    o.rollups,
		Retentions: o.retentions,
		Lateness:   o.lateness,
		Shard: shard.Config{
			Shards:  o.shards,
			Depth:   o.queueDepth,
			Handoff: o.handoff,
			Hier:    hier.Config{Cuts: o.cuts},
			Durable: shard.Durability{Dir: o.durDir, SyncEvery: o.syncEvery},
			Metrics: shard.NewMetrics(o.metrics),
			Flight:  o.flight,
		},
		Metrics:            window.NewMetrics(o.metrics),
		SubscriberQueue:    o.subQueue,
		SubscriberPatience: o.subPatience,
	})
	if err != nil {
		return nil, err
	}
	return &Windowed{s: s, dim: dim}, nil
}

// RecoverWindowed restores a durable Windowed matrix from the root
// directory a previous WithDurability matrix wrote. The store manifest
// fixes the dimension, window duration, roll-ups, retention, and lateness
// (so WithRollUps/WithRetentions/WithLateness/WithShards/WithCuts must
// not be passed); each retained window recovers through the shard layer
// with the usual durable-prefix and torn-tail guarantees — sealed windows
// come back sealed, active windows resume ingesting. WithQueueDepth,
// WithHandoff, and WithSyncEvery tune the recovered matrix as they would
// a new one.
func RecoverWindowed(dir string, opts ...Option) (*Windowed, error) {
	var o options
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.shards != 0 || o.cuts != nil || o.rollups != nil || o.retentions != nil || o.lateness != 0 {
		return nil, fmt.Errorf("%w: shape options are fixed by the recovered store manifest", gb.ErrInvalidValue)
	}
	if o.durDir != "" && o.durDir != dir {
		return nil, fmt.Errorf("%w: WithDurability(%q) conflicts with RecoverWindowed dir %q", gb.ErrInvalidValue, o.durDir, dir)
	}
	s, _, err := window.Recover[uint64](window.Config{
		Shard: shard.Config{
			Depth:   o.queueDepth,
			Handoff: o.handoff,
			Durable: shard.Durability{Dir: dir, SyncEvery: o.syncEvery},
			Metrics: shard.NewMetrics(o.metrics),
			Flight:  o.flight,
		},
		Metrics:            window.NewMetrics(o.metrics),
		SubscriberQueue:    o.subQueue,
		SubscriberPatience: o.subPatience,
	})
	if err != nil {
		return nil, err
	}
	return &Windowed{s: s, dim: uint64(s.NRows())}, nil
}

// Dim returns the matrix dimension.
func (w *Windowed) Dim() uint64 { return w.dim }

// Window returns the level-0 window duration.
func (w *Windowed) Window() time.Duration { return w.s.Window() }

// Levels returns the number of hierarchy levels (1 + roll-up factors).
func (w *Windowed) Levels() int { return w.s.Levels() }

// Span returns one level's window duration.
func (w *Windowed) Span(level int) time.Duration { return w.s.Span(level) }

// Durable reports whether the matrix persists its windows.
func (w *Windowed) Durable() bool { return w.s.Durable() }

// Shards returns the shard count each window's cascade group runs with.
func (w *Windowed) Shards() int { return w.s.ShardsPerWindow() }

// AllTime resolves a range view over everything the matrix has observed
// (event time zero through the current watermark's window).
func (w *Windowed) AllTime() (*RangeView, error) {
	hi := w.s.Watermark() + int64(w.Window())
	r, err := w.s.QueryRange(0, hi)
	if err != nil {
		return nil, err
	}
	return &RangeView{r: r}, nil
}

// Watermark returns the largest event timestamp observed.
func (w *Windowed) Watermark() time.Time { return time.Unix(0, w.s.Watermark()) }

// SealedTo returns the seal frontier: appends before it fail with ErrLate.
func (w *Windowed) SealedTo() time.Time { return time.Unix(0, w.s.SealedTo()) }

// Append streams a batch of (src, dst) observations with weight 1 each,
// all stamped with the event time ts, into the window containing ts. Safe
// for concurrent use; the slices are copied before the call returns.
// Appends behind the seal frontier fail with ErrLate.
func (w *Windowed) Append(ts time.Time, src, dst []uint64) error {
	return appendUnit(src, dst, func(s, d, wt []uint64) error {
		return w.AppendWeighted(ts, s, d, wt)
	})
}

// AppendWeighted streams a batch of weighted observations at event time
// ts; see Append.
func (w *Windowed) AppendWeighted(ts time.Time, src, dst, weight []uint64) error {
	return appendWeighted(src, dst, weight, func(rows, cols []gb.Index, vals []uint64) error {
		return w.s.Append(ts.UnixNano(), rows, cols, vals)
	})
}

// AppendWeightedAtSession streams one timestamped insert frame under the
// exactly-once protocol: (session, seq) is the frame's dedup key, exactly
// as in Sharded.AppendWeightedSession. A duplicate — at or below the
// store frontier, or already held by the sealed window that would own ts
// — returns dup=true without applying anything; a genuinely late frame
// that was never applied still fails with ErrLate.
func (w *Windowed) AppendWeightedAtSession(session string, seq uint64, ts time.Time, src, dst, weight []uint64) (bool, error) {
	return w.AppendWeightedAtSessionSpan(session, seq, ts, src, dst, weight, nil)
}

// AppendWeightedAtSessionSpan is AppendWeightedAtSession carrying a
// sampled frame's latency span (see the network server's tracing); a
// nil span — the unsampled common case — costs nothing.
func (w *Windowed) AppendWeightedAtSessionSpan(session string, seq uint64, ts time.Time, src, dst, weight []uint64, sp *IngestSpan) (bool, error) {
	if len(src) != len(dst) || len(src) != len(weight) {
		return false, fmt.Errorf("%w: batch lengths %d/%d/%d differ", gb.ErrInvalidValue, len(src), len(dst), len(weight))
	}
	rows := make([]gb.Index, len(src))
	cols := make([]gb.Index, len(dst))
	for k := range src {
		rows[k] = gb.Index(src[k])
		cols[k] = gb.Index(dst[k])
	}
	return w.s.AppendSessionSpan(session, seq, ts.UnixNano(), rows, cols, weight, sp)
}

// SessionResume reports a session's resume frontier, like
// Sharded.SessionResume.
func (w *Windowed) SessionResume(session string) uint64 { return w.s.ResumeSeq(session) }

// SessionMint reports a session's seq-minting floor, like
// Sharded.SessionMint.
func (w *Windowed) SessionMint(session string) uint64 { return w.s.MintSeq(session) }

// Seal seals every window ending at or before upTo (aligned down to a
// window boundary), publishing their summaries and running any roll-ups
// and retention expiry they unlock — the clock-driven alternative to
// watermark sealing for quiet streams.
func (w *Windowed) Seal(upTo time.Time) error { return w.s.Seal(upTo.UnixNano()) }

// Flush drains and completes all pending ingest work in every active
// window; on a durable matrix it is a group-commit point.
func (w *Windowed) Flush() error { return w.s.Flush() }

// Checkpoint checkpoints every active window (sealed windows took their
// final checkpoint at seal time); ErrNotDurable without WithDurability.
func (w *Windowed) Checkpoint() error { return w.s.Checkpoint() }

// Close stops the matrix: active windows close WITHOUT sealing (they
// resume as active after RecoverWindowed) and every subscription ends.
// The matrix stays fully queryable; ingest fails with ErrClosed after.
func (w *Windowed) Close() error { return w.s.Close() }

// TimeSpan is one half-open event-time interval.
type TimeSpan struct {
	Start, End time.Time
}

// WindowStats counts the store's lifecycle events.
type WindowStats struct {
	Active    int   // windows currently accepting appends
	Sealed    int   // sealed windows currently retained (all levels)
	Seals     int64 // windows sealed so far
	RollUps   int64 // roll-up windows materialized
	Expired   int64 // windows removed by retention
	LateDrops int64 // entries refused with ErrLate
}

// WindowStats snapshots the lifecycle counters.
func (w *Windowed) WindowStats() WindowStats {
	st := w.s.Stats()
	return WindowStats{
		Active:    st.Active,
		Sealed:    st.Sealed,
		Seals:     st.Seals,
		RollUps:   st.RollUps,
		Expired:   st.Expired,
		LateDrops: st.LateDrops,
	}
}

// RangeView is a resolved time-range query: a cover of windows tiling the
// range, preferring roll-ups that fit entirely inside it. Every query on
// the view touches only the cover — cost scales with windows touched, not
// total stored entries — and answers exactly as a flat matrix holding the
// range's traffic would. The view stays valid after later seals, roll-ups,
// and expiry (its windows remain queryable), but describes the store as
// of resolution time.
type RangeView struct {
	r *window.Range[uint64]
}

// QueryRange resolves the cover of [t0, t1) (t0 aligned down, t1 up, to
// the window duration). Uncovered slices — data expired at the requested
// resolution — are reported on the view, never silently dropped.
func (w *Windowed) QueryRange(t0, t1 time.Time) (*RangeView, error) {
	r, err := w.s.QueryRange(t0.UnixNano(), t1.UnixNano())
	if err != nil {
		return nil, err
	}
	return &RangeView{r: r}, nil
}

// Instrument attaches a query span and/or an EXPLAIN collector to the
// view: the next query method's per-window fan-out legs are timed into
// them. Either argument may be nil; the explain trailer's cover and
// uncovered holes are filled immediately, from the same resolved cover
// Spans and Uncovered report. One query method per Instrument call.
func (v *RangeView) Instrument(sp *QuerySpan, ex *QueryExplain) { v.r.Instrument(sp, ex) }

// Windows returns the number of windows in the cover.
func (v *RangeView) Windows() int { return v.r.Windows() }

// Spans lists the cover's window spans in time order.
func (v *RangeView) Spans() []TimeSpan { return toTimeSpans(v.r.Spans()) }

// Uncovered lists the slices of the range no retained window could serve.
func (v *RangeView) Uncovered() []TimeSpan { return toTimeSpans(v.r.Uncovered) }

func toTimeSpans(spans []window.Span) []TimeSpan {
	out := make([]TimeSpan, len(spans))
	for i, s := range spans {
		out[i] = TimeSpan{Start: time.Unix(0, s.Start), End: time.Unix(0, s.End)}
	}
	return out
}

// Entries returns the number of distinct (src, dst) pairs in the range.
func (v *RangeView) Entries() (int, error) { return v.r.NVals() }

// TotalPackets returns the sum of all weights in the range.
func (v *RangeView) TotalPackets() (uint64, error) { return v.r.Total() }

// Lookup returns the accumulated weight for one (src, dst) pair over the
// range, summed across the cover's windows.
func (v *RangeView) Lookup(src, dst uint64) (uint64, bool, error) {
	return v.r.Lookup(gb.Index(src), gb.Index(dst))
}

// TopSources returns the k sources with the most traffic in the range.
func (v *RangeView) TopSources(k int) ([]Ranked, error) {
	top, err := v.r.TopRows(k)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, len(top))
	for i, e := range top {
		out[i] = Ranked{ID: uint64(e.Index), Value: e.Value}
	}
	return out, nil
}

// TopDestinations returns the k destinations with the most traffic in the
// range.
func (v *RangeView) TopDestinations(k int) ([]Ranked, error) {
	top, err := v.r.TopCols(k)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, len(top))
	for i, e := range top {
		out[i] = Ranked{ID: uint64(e.Index), Value: e.Value}
	}
	return out, nil
}

// Summary computes the aggregate statistics of the range's traffic.
func (v *RangeView) Summary() (Summary, error) {
	m, err := v.r.Materialize()
	if err != nil {
		return Summary{}, err
	}
	return summaryOf(m)
}

// WindowSummary is the per-window digest published when a window seals.
type WindowSummary struct {
	Level        int       // 0 = finest; roll-ups count upward
	Start, End   time.Time // the window's event-time bounds
	Entries      int       // distinct (src, dst) pairs
	Sources      int       // distinct sources with traffic
	Destinations int       // distinct destinations with traffic
	Packets      uint64    // sum of all weights
}

// WindowSub is a live feed of seal summaries: exactly one per sealed
// window, in seal order. Close it when done; the matrix's Close ends it.
type WindowSub struct {
	sub *window.Subscription[uint64]
}

// Subscribe registers a summary feed for the given levels (none = all).
// Windows sealed before the call are not replayed, and subscriptions do
// not survive RecoverWindowed.
func (w *Windowed) Subscribe(levels ...int) *WindowSub {
	return &WindowSub{sub: w.s.Subscribe(levels...)}
}

// Next blocks until the next summary and returns it; ok is false once the
// subscription is closed and drained. Summaries whose seal-time
// aggregation failed are skipped (the window still sealed).
func (s *WindowSub) Next() (WindowSummary, bool) {
	for {
		sum, ok := s.sub.Next()
		if !ok {
			return WindowSummary{}, false
		}
		if sum.Err != nil {
			continue
		}
		return WindowSummary{
			Level:        sum.Level,
			Start:        time.Unix(0, sum.Start),
			End:          time.Unix(0, sum.End),
			Entries:      sum.Entries,
			Sources:      sum.Sources,
			Destinations: sum.Destinations,
			Packets:      sum.Total,
		}, true
	}
}

// Evicted reports whether the store disconnected this subscription for
// staying full past the patience deadline (see WithSubscriberQueue).
// Once true, Next reports done immediately.
func (s *WindowSub) Evicted() bool { return s.sub.Evicted() }

// Close ends the subscription; Next drains what is queued, then reports
// done. Idempotent.
func (s *WindowSub) Close() { s.sub.Close() }
