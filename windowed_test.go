package hhgb_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hhgb"
)

// base is an arbitrary fixed wall-clock origin for the windowed tests.
var base = time.Unix(1_700_000_000, 0)

func TestWindowedFacadeEndToEnd(t *testing.T) {
	wm, err := hhgb.NewWindowed(1<<20, time.Second,
		hhgb.WithRollUps(4),
		hhgb.WithLateness(time.Hour), // sealing driven explicitly below
		hhgb.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer wm.Close()
	if wm.Window() != time.Second || wm.Levels() != 2 || wm.Span(1) != 4*time.Second {
		t.Fatalf("shape: window=%v levels=%d span1=%v", wm.Window(), wm.Levels(), wm.Span(1))
	}

	sub := wm.Subscribe(0)
	// Window w gets w+1 observations of (7, w).
	for w := 0; w < 8; w++ {
		ts := base.Add(time.Duration(w)*time.Second + 100*time.Millisecond)
		for i := 0; i <= w; i++ {
			if err := wm.Append(ts, []uint64{7}, []uint64{uint64(w)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := wm.Seal(base.Add(8 * time.Second)); err != nil {
		t.Fatal(err)
	}

	st := wm.WindowStats()
	if st.Seals != 10 || st.RollUps != 2 { // 8 level-0 + 2 roll-ups sealed
		t.Fatalf("stats: %+v", st)
	}

	// Range over windows 2..5: 3+4+5+6 = 18 packets.
	v, err := wm.QueryRange(base.Add(2*time.Second), base.Add(6*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := v.TotalPackets(); err != nil || n != 18 {
		t.Fatalf("TotalPackets = %d (%v), want 18", n, err)
	}
	if n, err := v.Entries(); err != nil || n != 4 {
		t.Fatalf("Entries = %d (%v), want 4", n, err)
	}
	if got, ok, err := v.Lookup(7, 3); err != nil || !ok || got != 4 {
		t.Fatalf("Lookup(7,3) = %d/%v/%v, want 4", got, ok, err)
	}
	top, err := v.TopSources(1)
	if err != nil || len(top) != 1 || top[0].ID != 7 || top[0].Value != 18 {
		t.Fatalf("TopSources = %v (%v)", top, err)
	}
	sum, err := v.Summary()
	if err != nil || sum.TotalPackets != 18 || sum.Sources != 1 || sum.Destinations != 4 {
		t.Fatalf("Summary = %+v (%v)", sum, err)
	}

	// An aligned roll-up epoch answers from one window.
	v2, err := wm.QueryRange(base, base.Add(4*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if v2.Windows() != 1 {
		t.Fatalf("rolled epoch covered by %d windows: %v", v2.Windows(), v2.Spans())
	}
	if n, _ := v2.TotalPackets(); n != 1+2+3+4 {
		t.Fatalf("rolled epoch packets = %d, want 10", n)
	}

	// Late appends are refused, not silently dropped.
	if err := wm.Append(base.Add(time.Second), []uint64{1}, []uint64{1}); !errors.Is(err, hhgb.ErrLate) {
		t.Fatalf("late append: %v, want ErrLate", err)
	}
	if wm.WindowStats().LateDrops != 1 {
		t.Fatalf("LateDrops = %d, want 1", wm.WindowStats().LateDrops)
	}

	// The subscription saw the eight level-0 seals in order.
	wm.Close()
	var got []hhgb.WindowSummary
	for {
		s, ok := sub.Next()
		if !ok {
			break
		}
		got = append(got, s)
	}
	if len(got) != 8 {
		t.Fatalf("received %d summaries, want 8", len(got))
	}
	for i, s := range got {
		if want := base.Add(time.Duration(i) * time.Second); !s.Start.Equal(want) {
			t.Fatalf("summary %d starts %v, want %v", i, s.Start, want)
		}
		if s.Packets != uint64(i+1) || s.Entries != 1 {
			t.Fatalf("summary %d: %+v", i, s)
		}
	}
}

func TestWindowedDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	wm, err := hhgb.NewWindowed(1<<16, time.Second,
		hhgb.WithLateness(time.Hour),
		hhgb.WithShards(2),
		hhgb.WithDurability(dir))
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		ts := base.Add(time.Duration(w) * time.Second)
		if err := wm.AppendWeighted(ts, []uint64{uint64(w)}, []uint64{9}, []uint64{100}); err != nil {
			t.Fatal(err)
		}
	}
	if err := wm.Seal(base.Add(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := wm.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := hhgb.RecoverWindowed(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if rec.Dim() != 1<<16 || rec.Window() != time.Second {
		t.Fatalf("recovered shape: dim=%d window=%v", rec.Dim(), rec.Window())
	}
	st := rec.WindowStats()
	if st.Sealed != 2 || st.Active != 2 {
		t.Fatalf("recovered stats: %+v", st)
	}
	v, err := rec.QueryRange(base, base.Add(4*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := v.TotalPackets(); err != nil || n != 400 {
		t.Fatalf("recovered packets = %d (%v), want 400", n, err)
	}
	// The recovered matrix keeps ingesting past the frontier.
	if err := rec.Append(base.Add(5*time.Second), []uint64{5}, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	// Shape options are fixed by the manifest.
	if _, err := hhgb.RecoverWindowed(dir, hhgb.WithRollUps(4)); err == nil {
		t.Fatal("RecoverWindowed accepted WithRollUps")
	}
}

func TestWindowedOptionsRejectedElsewhere(t *testing.T) {
	if _, err := hhgb.New(1<<10, hhgb.WithRollUps(4)); err == nil {
		t.Fatal("New accepted WithRollUps")
	}
	if _, err := hhgb.NewSharded(1<<10, hhgb.WithLateness(time.Second)); err == nil {
		t.Fatal("NewSharded accepted WithLateness")
	}
	if _, err := hhgb.NewSharded(1<<10, hhgb.WithRetentions(time.Minute)); err == nil {
		t.Fatal("NewSharded accepted WithRetentions")
	}
	if _, err := hhgb.NewWindowed(1<<10, 0); err == nil {
		t.Fatal("NewWindowed accepted a zero window")
	}
	if _, err := hhgb.NewWindowed(1<<10, time.Second, hhgb.WithRollUps(1)); err == nil {
		t.Fatal("NewWindowed accepted a roll-up factor of 1")
	}
}

// ExampleNewWindowed streams timestamped traffic into one-second windows
// rolled up in fours, then answers a range query from the hierarchy.
func ExampleNewWindowed() {
	start := time.Unix(1_700_000_000, 0)
	wm, _ := hhgb.NewWindowed(1<<32, time.Second, hhgb.WithRollUps(4), hhgb.WithLateness(time.Hour))
	defer wm.Close()

	sub := wm.Subscribe(0)
	for w := 0; w < 4; w++ {
		ts := start.Add(time.Duration(w) * time.Second)
		_ = wm.Append(ts, []uint64{10, 10}, []uint64{20, uint64(30 + w)})
	}
	_ = wm.Seal(start.Add(4 * time.Second)) // seals 4 windows, rolls up one 4s epoch

	v, _ := wm.QueryRange(start.Add(1*time.Second), start.Add(3*time.Second))
	packets, _ := v.TotalPackets()
	fmt.Printf("windows touched: %d, packets: %d\n", v.Windows(), packets)

	first, _ := sub.Next()
	fmt.Printf("first sealed window: %ds, %d packets\n", first.Start.Unix()-start.Unix(), first.Packets)
	// Output:
	// windows touched: 2, packets: 4
	// first sealed window: 0s, 2 packets
}
