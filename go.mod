module hhgb

go 1.24
