// Package hhgb is the public facade of the hierarchical hypersparse
// GraphBLAS library: streaming traffic matrices that sustain millions of
// updates per second per instance by cascading hypersparse GraphBLAS
// matrices through the memory hierarchy (Kepner et al., IPDPS-W 2020).
//
// The flagship type is TrafficMatrix — an N-level hierarchical hypersparse
// matrix over a 2^64-capable index space with a streaming Update path and
// analysis-time queries:
//
//	tm, _ := hhgb.New(hhgb.IPv4Space)
//	_ = tm.Update(srcs, dsts)          // millions/second, batched
//	top, _ := tm.TopSources(10)        // supernode analysis
//
// For multi-core ingest, Sharded hash-partitions one logical matrix across
// independent cascades fed by worker goroutines — the single-node analogue
// of the paper's shared-nothing scaling — while answering the same queries:
//
//	sm, _ := hhgb.NewSharded(hhgb.IPv4Space)   // one shard per core
//	_ = sm.Update(srcs, dsts)                  // safe from any goroutine
//	_ = sm.Close()                             // drain; stays queryable
//
// A Sharded matrix becomes crash-safe with WithDurability: each shard
// write-ahead-logs its batches with a group-commit sync policy, Checkpoint
// compacts the logs into per-shard snapshots, and Recover rebuilds the
// matrix from the directory after a crash or restart:
//
//	sm, _ := hhgb.NewSharded(dim, hhgb.WithDurability(dir))
//	_ = sm.Flush()                             // group commit: batches durable
//	_ = sm.Checkpoint()                        // snapshot; logs truncate
//	sm, _ = hhgb.Recover(dir)                  // after a crash
//
// For continuous capture, Windowed partitions the stream into
// fixed-duration event-time windows — each its own sharded cascade —
// rolled up into coarser epochs, expired by retention, and queryable by
// time range at a cost proportional to the windows touched:
//
//	wm, _ := hhgb.NewWindowed(dim, time.Second, hhgb.WithRollUps(60, 60))
//	_ = wm.Append(ts, srcs, dsts)              // routed by event time
//	v, _ := wm.QueryRange(t0, t1)              // only the windows in range
//	sub := wm.Subscribe(0)                     // one summary per sealed window
//
// The full algebra (semirings, MxM, associative arrays, the benchmark
// engines) lives in the internal packages; see README.md for the package
// map and docs/ARCHITECTURE.md for the end-to-end ingest, query-pushdown,
// and durability/recovery design.
package hhgb

import (
	"fmt"
	"time"

	"hhgb/internal/flight"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/metrics"
	"hhgb/internal/stats"
)

// IPv4Space is the matrix dimension covering the IPv4 address space.
const IPv4Space uint64 = 1 << 32

// IPv6Space is the largest representable dimension (2^64 addresses are
// indexed 0 … 2^64-1; the dimension saturates at 2^64-1).
const IPv6Space uint64 = ^uint64(0)

// Option configures a TrafficMatrix or a Sharded matrix.
type Option func(*options) error

type options struct {
	cuts        []int
	shards      int
	queueDepth  int
	handoff     int
	durDir      string
	syncEvery   int
	rollups     []int
	retentions  []time.Duration
	lateness    time.Duration
	metrics     *Metrics
	subQueue    int
	subPatience time.Duration
	flight      *FlightRecorder
}

// windowedOnly reports whether any option applying only to NewWindowed
// was set; New and NewSharded reject those.
func (o *options) windowedOnly() bool {
	return o.rollups != nil || o.retentions != nil || o.lateness != 0 ||
		o.subQueue != 0 || o.subPatience != 0
}

// Metrics is a metric registry: counters, gauges, and fixed-bucket
// histograms rendered in Prometheus text exposition format by Handler or
// WriteTo. One registry is typically shared by the matrix (WithMetrics),
// the network server, and whatever else the process wants scraped.
type Metrics = metrics.Registry

// NewMetrics returns an empty metric registry.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// FlightRecorder is a fixed-size preallocated ring of structured
// operational events (WAL fsyncs, checkpoint phases, window seals,
// roll-ups, expiries — and, wired into the network server, connection
// and frame lifecycle). Recording is allocation-free and lock-light;
// the ring is dumpable as JSON at any time (WriteJSON, Handler). One
// recorder is typically shared by the matrix (WithFlightRecorder) and
// the network server.
type FlightRecorder = flight.Recorder

// IngestSpan is a sampled frame's stage-latency span, threaded through
// the session append paths by the network server. Most callers never
// touch it; the plain Append methods pass nil.
type IngestSpan = flight.Span

// QuerySpan is a spanned read op's stage-latency span, the query-path
// analog of IngestSpan: the network server threads it through a
// RangeView (Instrument) so per-window fan-out legs attribute into the
// hhgb_query_stage_seconds histograms and the flight ring. Nil is always
// a valid span.
type QuerySpan = flight.QuerySpan

// QueryExplain is the structured EXPLAIN trailer collected alongside a
// query: the served cover (one timed leg per window), the uncovered
// holes, and per-leg fan-out shape. Attach one with
// RangeView.Instrument.
type QueryExplain = flight.QueryExplain

// NewFlightRecorder returns a flight recorder holding the most recent n
// events (rounded up to a power of two; n < 1 selects a 4096-event
// ring). All memory is allocated up front.
func NewFlightRecorder(n int) *FlightRecorder { return flight.NewRecorder(n) }

// WithFlightRecorder wires the matrix's structured event stream — WAL
// fsyncs, checkpoint begin/end, window seal/roll-up/expiry — into the
// given ring. Without it no events are recorded (each site costs one
// branch).
func WithFlightRecorder(r *FlightRecorder) Option {
	return func(o *options) error {
		if r == nil {
			return fmt.Errorf("%w: nil flight recorder", gb.ErrInvalidValue)
		}
		o.flight = r
		return nil
	}
}

// WithMetrics wires the matrix's instrumentation — shard batches applied,
// WAL fsync and checkpoint latency, queue depths, and (windowed) window
// lifecycle counts, seal lag, roll-up duration, subscriber health — into
// the given registry. Without it the instruments still update, into a
// registry nothing ever renders.
func WithMetrics(m *Metrics) Option {
	return func(o *options) error {
		if m == nil {
			return fmt.Errorf("%w: nil metrics registry", gb.ErrInvalidValue)
		}
		o.metrics = m
		return nil
	}
}

// WithSubscriberQueue bounds each window subscription's summary queue: a
// subscription at or over n queued summaries starts a patience clock (see
// WithSubscriberPatience), and one still full when it expires is evicted —
// closed, backlog dropped, WindowSub.Evicted reporting true. The bound is
// a trigger, not a hard cap: within patience, summaries keep queueing, so
// a consumer that recovers misses nothing. The default (0) keeps queues
// unbounded — no eviction, the pre-existing behavior. It applies only to
// NewWindowed/RecoverWindowed; New and NewSharded reject it.
func WithSubscriberQueue(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("%w: subscriber queue bound %d < 1", gb.ErrInvalidValue, n)
		}
		o.subQueue = n
		return nil
	}
}

// WithSubscriberPatience sets how long a full subscription (see
// WithSubscriberQueue) is tolerated before eviction. The default with a
// queue bound set is 0: evict on the first publish that finds the queue
// at the bound. It applies only to NewWindowed/RecoverWindowed.
func WithSubscriberPatience(d time.Duration) Option {
	return func(o *options) error {
		if d <= 0 {
			return fmt.Errorf("%w: subscriber patience %v <= 0", gb.ErrInvalidValue, d)
		}
		o.subPatience = d
		return nil
	}
}

// WithCuts sets explicit cascade cuts c1 … c(N-1); the matrix has
// len(cuts)+1 levels. An empty slice selects a single flat level.
func WithCuts(cuts []int) Option {
	return func(o *options) error {
		o.cuts = append([]int(nil), cuts...)
		return nil
	}
}

// WithGeometricCuts sets levels with cuts base, base*ratio, base*ratio², …
// — the tuning family from the paper's Section II.
func WithGeometricCuts(levels, base, ratio int) Option {
	return func(o *options) error {
		if levels < 1 || base < 1 || ratio < 1 {
			return fmt.Errorf("%w: geometric cuts need levels/base/ratio >= 1", gb.ErrInvalidValue)
		}
		o.cuts = hier.GeometricCuts(levels, base, ratio)
		return nil
	}
}

// WithShards sets the shard count of a Sharded matrix: the number of
// independent hierarchical cascades (and ingest worker goroutines) the
// logical matrix is hash-partitioned across. The default is
// runtime.GOMAXPROCS(0). It applies only to NewSharded; New rejects it.
func WithShards(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("%w: shard count %d < 1", gb.ErrInvalidValue, n)
		}
		o.shards = n
		return nil
	}
}

// WithQueueDepth sets the per-shard ingest queue depth in batches for a
// Sharded matrix (default 8). Deeper queues decouple bursty producers from
// a momentarily-cascading shard at the cost of more buffered batches. It
// applies only to NewSharded; New rejects it.
func WithQueueDepth(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("%w: queue depth %d < 1", gb.ErrInvalidValue, n)
		}
		o.queueDepth = n
		return nil
	}
}

// WithHandoff sets the per-shard producer buffer size in entries for a
// Sharded matrix (default 4096): each producer's entries for a shard are
// buffered locally and handed to the shard worker once the buffer reaches
// this size (and at every flush or query barrier). Larger buffers amortize
// queue handoffs further; smaller ones reduce the batch latency floor. It
// applies only to NewSharded; New rejects it.
func WithHandoff(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("%w: handoff size %d < 1", gb.ErrInvalidValue, n)
		}
		o.handoff = n
		return nil
	}
}

// WithDurability makes a Sharded matrix crash-safe: each shard worker
// writes a per-shard write-ahead log under dir, and Checkpoint (and Close)
// serialize per-shard snapshots plus a manifest there, truncating the
// logs. Flush becomes a group-commit point — every batch accepted before
// it survives a crash — and Recover restores the matrix from the same
// directory after one. The directory must not already hold a durable
// matrix (restore that with Recover instead). It applies only to
// NewSharded; New rejects it. See docs/ARCHITECTURE.md for the on-disk
// layout and the crash-window guarantees.
func WithDurability(dir string) Option {
	return func(o *options) error {
		if dir == "" {
			return fmt.Errorf("%w: durability directory must be non-empty", gb.ErrInvalidValue)
		}
		o.durDir = dir
		return nil
	}
}

// WithSyncEvery sets the group-commit interval of a durable Sharded
// matrix: each shard's log is fsynced after every n logged batches
// (default 64; 1 makes every batch durable as soon as its shard drains
// it). Barriers — Flush, Checkpoint, Close — always sync regardless, so n
// only bounds how much accepted-but-unsynced tail a crash between barriers
// can lose. The interval applies per shard: between barriers a crash may
// persist a batch's entries on the shards that happened to group-commit
// and lose them on the shards that had not yet — only the barriers are
// cross-shard-atomic durability points, and recovery after a mid-interval
// crash restores each shard's own logged prefix. Requires WithDurability.
func WithSyncEvery(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("%w: sync interval %d < 1", gb.ErrInvalidValue, n)
		}
		o.syncEvery = n
		return nil
	}
}

// WithRollUps configures a Windowed matrix's roll-up hierarchy: level i+1
// windows span factors[i] level-i windows (each factor >= 2), merged by
// matrix addition as soon as their span seals. WithRollUps(60, 60) over a
// one-second window yields the 1s → 1m → 1h cascade. It applies only to
// NewWindowed; New and NewSharded reject it.
func WithRollUps(factors ...int) Option {
	return func(o *options) error {
		if len(factors) == 0 {
			return fmt.Errorf("%w: WithRollUps needs at least one factor", gb.ErrInvalidValue)
		}
		for i, f := range factors {
			if f < 2 {
				return fmt.Errorf("%w: roll-up factor %d at level %d (need >= 2)", gb.ErrInvalidValue, f, i)
			}
		}
		o.rollups = append([]int(nil), factors...)
		return nil
	}
}

// WithRetentions sets a Windowed matrix's per-level retention: a sealed
// level-i window is expired (removed, durable state deleted) once the
// watermark passes its end by per[i]; zero (or a missing level) keeps
// that level forever. Expired fine windows keep serving aligned
// long-range queries through their roll-ups, so a level's retention
// should be at least the next level's span. It applies only to
// NewWindowed; New and NewSharded reject it.
func WithRetentions(per ...time.Duration) Option {
	return func(o *options) error {
		for i, d := range per {
			if d < 0 {
				return fmt.Errorf("%w: negative retention %v at level %d", gb.ErrInvalidValue, d, i)
			}
		}
		o.retentions = append([]time.Duration(nil), per...)
		return nil
	}
}

// WithLateness sets a Windowed matrix's out-of-orderness budget: a window
// seals only once the event-time watermark passes its end by d, so
// stragglers up to d behind the newest timestamp still land. Appends
// behind the resulting frontier fail with ErrLate. The default is 0
// (windows seal the moment the watermark crosses their end). It applies
// only to NewWindowed; New and NewSharded reject it.
func WithLateness(d time.Duration) Option {
	return func(o *options) error {
		if d < 0 {
			return fmt.Errorf("%w: negative lateness %v", gb.ErrInvalidValue, d)
		}
		o.lateness = d
		return nil
	}
}

// Ranked is one entry of a top-k result.
type Ranked struct {
	ID    uint64 // source or destination id (e.g. an IP address index)
	Value uint64 // packets or peer count
}

// Summary aggregates the headline statistics of the accumulated matrix.
type Summary struct {
	Entries      int    // stored (src, dst) pairs
	Sources      int    // distinct sources with traffic
	Destinations int    // distinct destinations with traffic
	TotalPackets uint64 // sum of all update weights
	MaxOutDegree uint64 // largest per-source fan-out
	MaxInDegree  uint64 // largest per-destination fan-in
}

// CascadeStats reports the ingest-side work counters.
type CascadeStats struct {
	Updates         int64   // entries ingested
	Batches         int64   // Update calls
	Cascades        []int64 // per-level promotion counts
	CascadedEntries []int64 // entries moved per level boundary
}

// TrafficMatrix is a streaming origin-destination traffic matrix backed by
// a hierarchical hypersparse GraphBLAS cascade. It is not safe for
// concurrent use; run one instance per ingest goroutine (the shared-nothing
// pattern the paper scales to 31,000 instances) or guard it externally.
type TrafficMatrix struct {
	h   *hier.Matrix[uint64]
	dim uint64
}

// New returns an empty dim x dim traffic matrix. With no options it uses
// the default 4-level geometric cascade.
func New(dim uint64, opts ...Option) (*TrafficMatrix, error) {
	var o options
	o.cuts = hier.DefaultConfig().Cuts
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.shards != 0 || o.queueDepth != 0 || o.handoff != 0 {
		return nil, fmt.Errorf("%w: sharding options apply to NewSharded, not New", gb.ErrInvalidValue)
	}
	if o.durDir != "" || o.syncEvery != 0 {
		return nil, fmt.Errorf("%w: durability options apply to NewSharded, not New", gb.ErrInvalidValue)
	}
	if o.windowedOnly() {
		return nil, fmt.Errorf("%w: windowing options apply to NewWindowed, not New", gb.ErrInvalidValue)
	}
	h, err := hier.New[uint64](gb.Index(dim), gb.Index(dim), hier.Config{Cuts: o.cuts})
	if err != nil {
		return nil, err
	}
	return &TrafficMatrix{h: h, dim: dim}, nil
}

// Dim returns the matrix dimension.
func (t *TrafficMatrix) Dim() uint64 { return t.dim }

// Levels returns the cascade depth.
func (t *TrafficMatrix) Levels() int { return t.h.NumLevels() }

// Update streams a batch of (src, dst) observations with weight 1 each.
// The slices must have equal length. This is the paper's headline
// operation: amortized cost is dominated by sorting each batch once and
// merging inside the cache-resident lowest level.
func (t *TrafficMatrix) Update(src, dst []uint64) error {
	return appendUnit(src, dst, t.UpdateWeighted)
}

// UpdateWeighted streams a batch of weighted observations (e.g. packet or
// byte counts).
func (t *TrafficMatrix) UpdateWeighted(src, dst, weight []uint64) error {
	return appendWeighted(src, dst, weight, t.h.Update)
}

// Entries returns the number of distinct (src, dst) pairs accumulated.
// It materializes a query, so it is an analysis-time call.
func (t *TrafficMatrix) Entries() (int, error) { return t.h.NVals() }

// Do materializes the accumulated matrix and visits every entry in
// row-major order, stopping early if f returns false.
func (t *TrafficMatrix) Do(f func(src, dst, packets uint64) bool) error {
	q, err := t.h.Query()
	if err != nil {
		return err
	}
	q.Iterate(func(i, j gb.Index, v uint64) bool {
		return f(uint64(i), uint64(j), v)
	})
	return nil
}

// Lookup returns the accumulated weight for one (src, dst) pair and
// whether any traffic was recorded for it.
func (t *TrafficMatrix) Lookup(src, dst uint64) (uint64, bool, error) {
	q, err := t.h.Query()
	if err != nil {
		return 0, false, err
	}
	return lookupIn(q, src, dst)
}

// TopSources returns the k sources with the most total traffic.
func (t *TrafficMatrix) TopSources(k int) ([]Ranked, error) {
	q, err := t.h.Query()
	if err != nil {
		return nil, err
	}
	return topSourcesOf(q, k)
}

// TopDestinations returns the k destinations with the most total traffic.
func (t *TrafficMatrix) TopDestinations(k int) ([]Ranked, error) {
	q, err := t.h.Query()
	if err != nil {
		return nil, err
	}
	return topDestinationsOf(q, k)
}

// appendUnit expands a unit-weight (src, dst) batch and funnels it to the
// weighted push — the shared front half of every Update/Append method.
func appendUnit(src, dst []uint64, pushWeighted func(src, dst, weight []uint64) error) error {
	if len(src) != len(dst) {
		return fmt.Errorf("%w: src/dst lengths %d/%d differ", gb.ErrInvalidValue, len(src), len(dst))
	}
	ones := make([]uint64, len(src))
	for k := range ones {
		ones[k] = 1
	}
	return pushWeighted(src, dst, ones)
}

// appendWeighted validates one weighted batch, converts it to gb tuples,
// and hands them to push — the shared back half of every weighted ingest
// method.
func appendWeighted(src, dst, weight []uint64, push func(rows, cols []gb.Index, vals []uint64) error) error {
	if len(src) != len(dst) || len(src) != len(weight) {
		return fmt.Errorf("%w: batch lengths %d/%d/%d differ", gb.ErrInvalidValue, len(src), len(dst), len(weight))
	}
	rows := make([]gb.Index, len(src))
	cols := make([]gb.Index, len(dst))
	for k := range src {
		rows[k] = gb.Index(src[k])
		cols[k] = gb.Index(dst[k])
	}
	return push(rows, cols, weight)
}

// lookupIn extracts one entry from a materialized query matrix.
func lookupIn(q *gb.Matrix[uint64], src, dst uint64) (uint64, bool, error) {
	v, err := q.ExtractElement(gb.Index(src), gb.Index(dst))
	if err != nil {
		if err == gb.ErrNoValue {
			return 0, false, nil
		}
		return 0, false, err
	}
	return v, true, nil
}

// topSourcesOf ranks per-source traffic of a materialized query matrix.
func topSourcesOf(q *gb.Matrix[uint64], k int) ([]Ranked, error) {
	v, err := stats.OutTraffic(q)
	if err != nil {
		return nil, err
	}
	return rankedOf(v, k)
}

// topDestinationsOf ranks per-destination traffic of a materialized query
// matrix.
func topDestinationsOf(q *gb.Matrix[uint64], k int) ([]Ranked, error) {
	v, err := stats.InTraffic(q)
	if err != nil {
		return nil, err
	}
	return rankedOf(v, k)
}

// summaryOf computes the aggregate statistics of a materialized query
// matrix.
func summaryOf(q *gb.Matrix[uint64]) (Summary, error) {
	s, err := stats.Summarize(q)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Entries:      s.Entries,
		Sources:      s.Sources,
		Destinations: s.Destinations,
		TotalPackets: s.TotalPackets,
		MaxOutDegree: s.MaxOutDegree,
		MaxInDegree:  s.MaxInDegree,
	}, nil
}

func rankedOf(v *gb.Vector[uint64], k int) ([]Ranked, error) {
	top, err := stats.TopK(v, k)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, len(top))
	for i, e := range top {
		out[i] = Ranked{ID: uint64(e.Index), Value: e.Value}
	}
	return out, nil
}

// Summary computes the aggregate statistics of the accumulated matrix.
func (t *TrafficMatrix) Summary() (Summary, error) {
	q, err := t.h.Query()
	if err != nil {
		return Summary{}, err
	}
	return summaryOf(q)
}

// Stats returns the cumulative ingest counters.
func (t *TrafficMatrix) Stats() CascadeStats {
	s := t.h.Stats()
	return CascadeStats{
		Updates:         s.Updates,
		Batches:         s.Batches,
		Cascades:        s.Cascades,
		CascadedEntries: s.CascadedEntries,
	}
}

// Reset empties the matrix, keeping its configuration.
func (t *TrafficMatrix) Reset() { t.h.Clear() }
