package hhgb

import (
	"bytes"
	"sync"
	"testing"

	"hhgb/internal/algo"
	"hhgb/internal/baselines"
	"hhgb/internal/cluster"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/powerlaw"
	"hhgb/internal/stats"
	"hhgb/internal/trace"
)

// TestIntegrationStreamingPipeline exercises the full paper pipeline in
// one pass: power-law generation → parallel shared-nothing ingest into
// hierarchical matrices → merge → network statistics → graph analytics →
// checkpoint/restore, verifying conservation at every stage.
func TestIntegrationStreamingPipeline(t *testing.T) {
	const procs = 3
	stream := powerlaw.StreamSpec{TotalEdges: 60_000, SetSize: 10_000, Scale: 20, Seed: 77}
	if err := stream.Validate(); err != nil {
		t.Fatal(err)
	}

	// Stage 1: parallel ingest, one hierarchical matrix per process.
	matrices := make([]*hier.Matrix[uint64], procs)
	var wg sync.WaitGroup
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		matrices[p] = hier.MustNew[uint64](1<<20, 1<<20, hier.Config{Cuts: hier.GeometricCuts(3, 1<<10, 16)})
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for set := p; set < stream.Sets(); set += procs {
				edges, err := stream.GenerateSet(set)
				if err != nil {
					errs[p] = err
					return
				}
				rows, cols, vals := powerlaw.ToTuples(edges)
				if err := matrices[p].Update(rows, cols, vals); err != nil {
					errs[p] = err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("process %d: %v", p, err)
		}
	}

	// Stage 2: merge the per-process matrices (the analysis-side union).
	var parts []*gb.Matrix[uint64]
	for _, h := range matrices {
		q, err := h.Query()
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, q)
	}
	total, err := gb.Sum(parts...)
	if err != nil {
		t.Fatal(err)
	}

	// Conservation: value mass equals the generated update count.
	mass, err := gb.ReduceScalar(total, gb.Plus[uint64]())
	if err != nil {
		t.Fatal(err)
	}
	if mass != uint64(stream.TotalEdges) {
		t.Fatalf("mass = %d, want %d", mass, stream.TotalEdges)
	}

	// Stage 3: statistics agree between the vector and scalar paths.
	sum, err := stats.Summarize(total)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalPackets != mass {
		t.Fatalf("summary packets %d != mass %d", sum.TotalPackets, mass)
	}
	ot, err := stats.OutTraffic(total)
	if err != nil {
		t.Fatal(err)
	}
	vecMass, err := gb.VecReduce(ot, gb.Plus[uint64]())
	if err != nil {
		t.Fatal(err)
	}
	if vecMass != mass {
		t.Fatalf("row-sum mass %d != %d", vecMass, mass)
	}
	top, err := stats.TopK(ot, 5)
	if err != nil || len(top) != 5 {
		t.Fatalf("topk: %v, %v", top, err)
	}
	// R-MAT skew: the single hottest source should carry far more than
	// the mean source's traffic.
	meanPer := float64(mass) / float64(sum.Sources)
	if float64(top[0].Value) < 5*meanPer {
		t.Fatalf("no power-law skew: top %d vs mean %.1f", top[0].Value, meanPer)
	}

	// Stage 4: graph analytics run on the accumulated matrix.
	bfs, err := algo.BFS(total, top[0].Index)
	if err != nil {
		t.Fatal(err)
	}
	if bfs.NVals() < 2 {
		t.Fatalf("hot vertex reaches only %d vertices", bfs.NVals())
	}
	if _, err := algo.TriangleCount(total); err != nil {
		t.Fatal(err)
	}

	// Stage 5: checkpoint a live per-process matrix and restore it; the
	// restored instance must agree and accept further updates.
	var buf bytes.Buffer
	if err := hier.Encode(&buf, matrices[0], gb.Uint64Codec[uint64]()); err != nil {
		t.Fatal(err)
	}
	restored, err := hier.Decode[uint64](&buf, gb.Uint64Codec[uint64]())
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := matrices[0].Query()
	q2, _ := restored.Query()
	if !gb.Equal(q1, q2) {
		t.Fatal("checkpoint round trip diverged")
	}
}

// TestIntegrationEnginesAgreeOnStream verifies that the GraphBLAS-backed
// Fig. 2 engines and the D4M engine all conserve the same stream, and
// that the GraphBLAS engines produce identical matrices.
func TestIntegrationEnginesAgreeOnStream(t *testing.T) {
	stream := powerlaw.StreamSpec{TotalEdges: 20_000, SetSize: 5_000, Scale: 18, Seed: 9}
	hierEng, err := baselines.NewHierGraphBLAS(1<<18, []int{1 << 8, 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	flatEng, err := baselines.NewFlatGraphBLAS(1 << 18)
	if err != nil {
		t.Fatal(err)
	}
	d4mEng, err := baselines.NewHierD4M([]int{1 << 8})
	if err != nil {
		t.Fatal(err)
	}
	for set := 0; set < stream.Sets(); set++ {
		edges, err := stream.GenerateSet(set)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range []baselines.Engine{hierEng, flatEng, d4mEng} {
			if err := e.Ingest(edges); err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
		}
	}
	hq, err := hierEng.Query()
	if err != nil {
		t.Fatal(err)
	}
	fq, err := flatEng.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !gb.Equal(hq, fq) {
		t.Fatal("hier and flat engines diverged")
	}
	a, err := d4mEng.QueryAssoc()
	if err != nil {
		t.Fatal(err)
	}
	d4mMass, err := a.Total()
	if err != nil {
		t.Fatal(err)
	}
	gbMass, _ := gb.ReduceScalar(hq, gb.Plus[uint64]())
	if uint64(d4mMass) != gbMass {
		t.Fatalf("D4M mass %v != GraphBLAS mass %d", d4mMass, gbMass)
	}
}

// TestIntegrationWindowedAnalyticsOverCluster runs the windowed traffic
// pipeline over flows and checks the background model converges onto the
// generator's stationary hot set.
func TestIntegrationWindowedAnalyticsOverCluster(t *testing.T) {
	gen, err := trace.NewGenerator(31)
	if err != nil {
		t.Fatal(err)
	}
	win, err := trace.NewWindow(5_000, hier.Config{Cuts: []int{256}})
	if err != nil {
		t.Fatal(err)
	}
	bg, err := stats.NewBackground(trace.IPv4Space, trace.IPv4Space, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for len(win.Completed()) < 3 {
		if err := win.Observe(gen.Batch(2_500)); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range win.Completed() {
		if err := bg.Absorb(w); err != nil {
			t.Fatal(err)
		}
	}
	if bg.Windows() != 3 {
		t.Fatalf("windows = %d", bg.Windows())
	}
	// A stationary generator means later windows mostly match the model:
	// anomalies at a high threshold should be a small fraction of entries.
	last := win.Completed()[2]
	anom, err := bg.Anomalies(last, 50.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if anom.NVals() > last.NVals()/10 {
		t.Fatalf("stationary stream flagged %d/%d entries", anom.NVals(), last.NVals())
	}
}

// TestIntegrationFig2MiniSweep runs the actual Fig. 2 harness end to end
// on two engines at tiny scale and checks the headline ordering.
func TestIntegrationFig2MiniSweep(t *testing.T) {
	series, models, err := cluster.Fig2(cluster.Fig2Config{
		Stream:             powerlaw.StreamSpec{TotalEdges: 20_000, SetSize: 2_000, Scale: 18, Seed: 2},
		ServerCounts:       []int{1, 100, 1100},
		CalibrationSeconds: 0.05,
		Engines:            []string{"hier-graphblas", "accumulo", "tpcc"},
		Dim:                1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 || len(models) != 3 {
		t.Fatalf("series/models: %d/%d", len(series), len(models))
	}
	at1100 := func(i int) float64 { return series[i].Points[2].Y }
	if !(at1100(0) > at1100(1) && at1100(1) > at1100(2)) {
		t.Fatalf("ordering at 1100 servers broken: %v / %v / %v", at1100(0), at1100(1), at1100(2))
	}
	// Shared-nothing line must be at least a decade above the per-server
	// database line at full scale.
	if at1100(0) < 10*at1100(1) {
		t.Fatalf("hier-graphblas (%v) not a decade above accumulo (%v)", at1100(0), at1100(1))
	}
}
