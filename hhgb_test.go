package hhgb

import (
	"errors"
	"testing"

	"hhgb/internal/gb"
)

func TestNewDefaults(t *testing.T) {
	tm, err := New(IPv4Space)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Dim() != IPv4Space {
		t.Fatalf("dim = %d", tm.Dim())
	}
	if tm.Levels() != 4 {
		t.Fatalf("levels = %d", tm.Levels())
	}
}

func TestOptions(t *testing.T) {
	tm, err := New(1<<20, WithCuts([]int{10, 100}))
	if err != nil {
		t.Fatal(err)
	}
	if tm.Levels() != 3 {
		t.Fatalf("levels = %d", tm.Levels())
	}
	flat, err := New(1<<20, WithCuts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if flat.Levels() != 1 {
		t.Fatalf("flat levels = %d", flat.Levels())
	}
	geo, err := New(1<<20, WithGeometricCuts(5, 100, 10))
	if err != nil {
		t.Fatal(err)
	}
	if geo.Levels() != 5 {
		t.Fatalf("geometric levels = %d", geo.Levels())
	}
	if _, err := New(1<<20, WithGeometricCuts(0, 100, 10)); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("bad geometric: %v", err)
	}
}

func TestUpdateAndLookup(t *testing.T) {
	tm, err := New(IPv4Space, WithCuts([]int{4}))
	if err != nil {
		t.Fatal(err)
	}
	src := []uint64{10, 10, 20, 10}
	dst := []uint64{99, 99, 88, 77}
	if err := tm.Update(src, dst); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tm.Lookup(10, 99)
	if err != nil || !ok || v != 2 {
		t.Fatalf("Lookup(10,99) = %d, %v, %v", v, ok, err)
	}
	_, ok, err = tm.Lookup(1, 1)
	if err != nil || ok {
		t.Fatalf("absent lookup = %v, %v", ok, err)
	}
	n, err := tm.Entries()
	if err != nil || n != 3 {
		t.Fatalf("entries = %d, %v", n, err)
	}
}

func TestUpdateLengthMismatch(t *testing.T) {
	tm, _ := New(1 << 20)
	if err := tm.Update([]uint64{1}, []uint64{1, 2}); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("got %v", err)
	}
	if err := tm.UpdateWeighted([]uint64{1}, []uint64{1}, nil); !errors.Is(err, gb.ErrInvalidValue) {
		t.Fatalf("got %v", err)
	}
}

func TestUpdateWeightedAndSummary(t *testing.T) {
	tm, _ := New(1 << 20)
	if err := tm.UpdateWeighted(
		[]uint64{1, 1, 2},
		[]uint64{5, 6, 5},
		[]uint64{10, 20, 30},
	); err != nil {
		t.Fatal(err)
	}
	s, err := tm.Summary()
	if err != nil {
		t.Fatal(err)
	}
	want := Summary{Entries: 3, Sources: 2, Destinations: 2, TotalPackets: 60, MaxOutDegree: 2, MaxInDegree: 2}
	if s != want {
		t.Fatalf("summary = %+v, want %+v", s, want)
	}
}

func TestTopSourcesAndDestinations(t *testing.T) {
	tm, _ := New(1 << 20)
	_ = tm.UpdateWeighted(
		[]uint64{7, 7, 8},
		[]uint64{1, 2, 1},
		[]uint64{100, 50, 10},
	)
	srcs, err := tm.TopSources(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 1 || srcs[0].ID != 7 || srcs[0].Value != 150 {
		t.Fatalf("top sources = %+v", srcs)
	}
	dsts, err := tm.TopDestinations(2)
	if err != nil {
		t.Fatal(err)
	}
	if dsts[0].ID != 1 || dsts[0].Value != 110 {
		t.Fatalf("top destinations = %+v", dsts)
	}
}

func TestDoVisitsRowMajor(t *testing.T) {
	tm, _ := New(1 << 20)
	_ = tm.Update([]uint64{5, 3, 5}, []uint64{1, 2, 0})
	var visited [][3]uint64
	if err := tm.Do(func(s, d, p uint64) bool {
		visited = append(visited, [3]uint64{s, d, p})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := [][3]uint64{{3, 2, 1}, {5, 0, 1}, {5, 1, 1}}
	if len(visited) != len(want) {
		t.Fatalf("visited = %v", visited)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited[%d] = %v, want %v", i, visited[i], want[i])
		}
	}
	// Early stop.
	n := 0
	_ = tm.Do(func(_, _, _ uint64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestStatsAndReset(t *testing.T) {
	tm, _ := New(1<<20, WithCuts([]int{2}))
	_ = tm.Update([]uint64{1, 2, 3, 4}, []uint64{1, 2, 3, 4})
	st := tm.Stats()
	if st.Updates != 4 || st.Batches != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Cascades[0] == 0 {
		t.Fatal("no cascade despite cut=2")
	}
	tm.Reset()
	n, err := tm.Entries()
	if err != nil || n != 0 {
		t.Fatalf("after reset: %d, %v", n, err)
	}
}

func TestIPv6SpaceConstruct(t *testing.T) {
	tm, err := New(IPv6Space)
	if err != nil {
		t.Fatal(err)
	}
	if err := tm.Update([]uint64{1 << 63}, []uint64{1<<64 - 2}); err != nil {
		t.Fatal(err)
	}
	v, ok, err := tm.Lookup(1<<63, 1<<64-2)
	if err != nil || !ok || v != 1 {
		t.Fatalf("huge lookup = %d, %v, %v", v, ok, err)
	}
}
