// Quickstart: create a hierarchical hypersparse traffic matrix, stream
// updates into it, and query the result — the minimal end-to-end use of
// the public hhgb API.
package main

import (
	"fmt"
	"log"

	"hhgb"
)

func main() {
	log.SetFlags(0)

	// An IPv4-scale origin-destination traffic matrix with the default
	// 4-level cascade. The 2^32 x 2^32 index space costs nothing until
	// entries arrive: the matrix is hypersparse.
	tm, err := hhgb.New(hhgb.IPv4Space)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %d-level traffic matrix over 2^32 addresses\n", tm.Levels())

	// Stream a few observation batches. In production each batch is a
	// window of netflow records; weights are packet counts.
	srcs := []uint64{0x0a000001, 0x0a000001, 0xc0a80101, 0x0a000001}
	dsts := []uint64{0x08080808, 0x08080404, 0x08080808, 0x08080808}
	pkts := []uint64{10, 2, 7, 30}
	if err := tm.UpdateWeighted(srcs, dsts, pkts); err != nil {
		log.Fatal(err)
	}
	if err := tm.Update([]uint64{0xdeadbeef}, []uint64{0x08080808}); err != nil {
		log.Fatal(err)
	}

	// Point query: duplicates were combined by GraphBLAS addition.
	v, ok, err := tm.Lookup(0x0a000001, 0x08080808)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traffic 10.0.0.1 -> 8.8.8.8: %d packets (present=%v)\n", v, ok)

	// Aggregate analysis.
	sum, err := tm.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summary: %d entries, %d sources, %d destinations, %d packets total\n",
		sum.Entries, sum.Sources, sum.Destinations, sum.TotalPackets)

	top, err := tm.TopDestinations(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("busiest destination: 0x%08x with %d packets\n", top[0].ID, top[0].Value)

	// The ingest-side counters show the cascade at work.
	st := tm.Stats()
	fmt.Printf("ingest: %d updates in %d batches, cascades per level: %v\n",
		st.Updates, st.Batches, st.Cascades)

	// Full scan in row-major order.
	fmt.Println("all entries:")
	err = tm.Do(func(src, dst, packets uint64) bool {
		fmt.Printf("  0x%08x -> 0x%08x : %d\n", src, dst, packets)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
}
