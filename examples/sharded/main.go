// Sharded: the concurrent ingest frontend. Where examples/scaling gives
// every "process" its own private matrix (the paper's shared-nothing
// experiment), this example keeps ONE logical traffic matrix and
// hash-partitions it across shards — independent hierarchical cascades fed
// through bounded queues by worker goroutines — so concurrent collectors
// stream into it and every analysis query sees the merged whole.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"

	"hhgb"
	"hhgb/internal/bench"
	"hhgb/internal/powerlaw"
)

func main() {
	log.SetFlags(0)

	const (
		scale     = 24 // 2^24 addresses
		producers = 4
		batchSize = 100_000 // the paper's set size
	)
	shards := runtime.GOMAXPROCS(0)

	run := func(shards, batches int) (bench.Rate, hhgb.Summary) {
		total := int64(producers * batches * batchSize)
		sm, err := hhgb.NewSharded(1<<scale, hhgb.WithShards(shards))
		if err != nil {
			log.Fatal(err)
		}
		rate, err := bench.Measure(total, func() error {
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					// Each producer generates its own power-law stream —
					// think one packet collector per ingress link — and
					// owns an Appender: its private set of shard buffers,
					// so partitioning never contends across collectors.
					a, err := sm.NewAppender()
					if err != nil {
						log.Fatal(err)
					}
					defer a.Close()
					g, err := powerlaw.NewRMAT(scale, uint64(1+p))
					if err != nil {
						log.Fatal(err)
					}
					src := make([]uint64, batchSize)
					dst := make([]uint64, batchSize)
					for b := 0; b < batches; b++ {
						for i := range src {
							e := g.Edge()
							src[i], dst[i] = uint64(e.Row), uint64(e.Col)
						}
						if err := a.Append(src, dst); err != nil {
							log.Fatal(err)
						}
					}
				}(p)
			}
			wg.Wait()
			return sm.Close() // drain every buffer and shard queue
		})
		if err != nil {
			log.Fatal(err)
		}
		// Summary is a pushdown query: per-shard reductions merged at
		// read time, no global matrix ever materialized.
		sum, err := sm.Summary()
		if err != nil {
			log.Fatal(err)
		}
		return rate, sum
	}

	const batches = 40
	fmt.Printf("one logical 2^%d x 2^%d traffic matrix, %d producers x %d batches of %d\n\n",
		scale, scale, producers, batches, batchSize)

	run(shards, 4) // warm-up: page in the allocator before either timed run
	flat, flatSum := run(1, batches)
	fmt.Printf("  1 shard   (single cascade):     %s\n", flat)
	sharded, shardedSum := run(shards, batches)
	fmt.Printf("  %d shard(s) (hash-partitioned):  %s\n", shards, sharded)
	fmt.Printf("  speedup: %.2fx on %d cores\n\n", bench.Speedup(flat, sharded), runtime.GOMAXPROCS(0))

	if flatSum != shardedSum {
		log.Fatalf("sharding changed the answer!\n  flat    %+v\n  sharded %+v", flatSum, shardedSum)
	}
	fmt.Printf("identical merged analysis either way:\n")
	fmt.Printf("  distinct flows: %d   packets: %d   sources: %d   max fan-out: %d\n",
		shardedSum.Entries, shardedSum.TotalPackets, shardedSum.Sources, shardedSum.MaxOutDegree)
}
