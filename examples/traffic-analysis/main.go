// Traffic analysis: the paper's motivating application. Streams synthetic
// (anonymized) netflow into windowed hierarchical traffic matrices, then
// runs the Section I analyses on each window: supernode detection,
// degree statistics, a background model, and anomaly extraction.
package main

import (
	"fmt"
	"log"

	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/stats"
	"hhgb/internal/trace"
)

func main() {
	log.SetFlags(0)

	gen, err := trace.NewGenerator(0xbeef)
	if err != nil {
		log.Fatal(err)
	}

	// 100k-flow windows cascading through a 3-level hierarchy.
	win, err := trace.NewWindow(100_000, hier.Config{Cuts: hier.GeometricCuts(3, 1<<12, 16)})
	if err != nil {
		log.Fatal(err)
	}
	background, err := stats.NewBackground(trace.IPv4Space, trace.IPv4Space, 0.3)
	if err != nil {
		log.Fatal(err)
	}

	const windows = 4
	fmt.Printf("streaming %d windows of 100,000 flows each\n\n", windows)
	for len(win.Completed()) < windows {
		if err := win.Observe(gen.Batch(20_000)); err != nil {
			log.Fatal(err)
		}
	}

	for i, m := range win.Completed() {
		s, err := stats.Summarize(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window %d: %7d entries  %7d srcs  %7d dsts  %9d pkts  max fan-out %d\n",
			i, s.Entries, s.Sources, s.Destinations, s.TotalPackets, s.MaxOutDegree)

		// Supernodes: heaviest destinations this window.
		it, err := stats.InTraffic(m)
		if err != nil {
			log.Fatal(err)
		}
		top, err := stats.TopK(it, 3)
		if err != nil {
			log.Fatal(err)
		}
		for rank, e := range top {
			ip, _ := trace.IndexToIPv4(e.Index)
			fmt.Printf("  supernode %d: %-15s %8d packets\n", rank+1, trace.FormatIPv4(ip), e.Value)
		}

		// Flag window-over-background anomalies before absorbing the
		// window into the model (first window: everything is new, so we
		// absorb first and only flag from window 1 on).
		if background.Windows() > 0 {
			anom, err := background.Anomalies(m, 4.0, 1000)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  anomalous edges vs background (>4x, >=1000 pkts): %d\n", anom.NVals())
			shown := 0
			anom.Iterate(func(i, j gb.Index, v uint64) bool {
				src, _ := trace.IndexToIPv4(i)
				dst, _ := trace.IndexToIPv4(j)
				fmt.Printf("    %s -> %s : %d pkts\n", trace.FormatIPv4(src), trace.FormatIPv4(dst), v)
				shown++
				return shown < 3
			})
		}
		if err := background.Absorb(m); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\nbackground model: %d entries after %d windows\n",
		background.Model().NVals(), background.Windows())
}
