// Scaling: the paper's Section III experiment in miniature. Shared-nothing
// "processes" (goroutines), each owning its own hierarchical hypersparse
// matrix instance, stream independently generated sets of a power-law
// graph; the aggregate sustained rate is measured, then extrapolated to
// SuperCloud scale with the calibrated shared-nothing model.
package main

import (
	"fmt"
	"log"
	"runtime"

	"hhgb/internal/baselines"
	"hhgb/internal/bench"
	"hhgb/internal/cluster"
	"hhgb/internal/powerlaw"
)

func main() {
	log.SetFlags(0)

	stream := powerlaw.StreamSpec{
		TotalEdges: 2_000_000,
		SetSize:    100_000, // the paper's set size
		Scale:      28,
		Seed:       7,
	}
	factory := func() (baselines.Engine, error) {
		return baselines.NewHierGraphBLAS(1<<28, nil)
	}

	fmt.Printf("workload: %d updates in %d sets of %d (one hierarchical matrix per process)\n",
		stream.TotalEdges, stream.Sets(), stream.SetSize)
	fmt.Printf("machine: %d cores\n\n", runtime.GOMAXPROCS(0))

	// Measured: real goroutine processes on local cores.
	results, err := cluster.WeakScaling(factory, stream, runtime.GOMAXPROCS(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("measured (local cores):")
	for _, r := range results {
		fmt.Printf("  %2d processes: %12s updates/s\n", r.Processes, bench.Eng(r.Rate()))
	}

	// Extrapolated: the paper's experiment is shared-nothing, so aggregate
	// rate composes additively across servers.
	model, err := cluster.Calibrate("hier-graphblas", factory, stream, 0.5, cluster.DefaultProcsPerServer)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncalibrated per-process rate: %s updates/s\n", bench.Eng(model.PerProcessRate))
	fmt.Printf("extrapolated aggregate (x%d procs/server, eff = n^-0.03):\n", model.ProcsPerServer)
	for _, servers := range []int{1, 10, 100, 1100} {
		fmt.Printf("  %5d servers: %12s updates/s\n", servers, bench.Eng(model.Aggregate(servers)))
	}
	fmt.Println("\n(the paper reports 75G updates/s at 1,100 servers / 34,000 cores)")
}
