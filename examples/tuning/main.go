// Tuning: demonstrates the paper's Section II claim that the cut
// parameters "are easily tunable to achieve optimal performance" — the
// same stream is replayed through several cascade configurations and the
// update rate and cascade traffic are compared.
package main

import (
	"fmt"
	"log"
	"time"

	"hhgb/internal/bench"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/powerlaw"
)

func main() {
	log.SetFlags(0)

	const edges = 1_000_000
	const batch = 10_000
	const scale = 26

	configs := []struct {
		name string
		cuts []int
	}{
		{"flat (no hierarchy)", nil},
		{"2 levels, c1=2^12", hier.GeometricCuts(2, 1<<12, 16)},
		{"4 levels, c1=2^10", hier.GeometricCuts(4, 1<<10, 16)},
		{"4 levels, c1=2^14 (default)", hier.GeometricCuts(4, 1<<14, 16)},
		{"4 levels, c1=2^18", hier.GeometricCuts(4, 1<<18, 16)},
		{"6 levels, c1=2^10, ratio 8", hier.GeometricCuts(6, 1<<10, 8)},
	}

	// Pre-generate the stream so every configuration replays identical data.
	g, err := powerlaw.NewRMAT(scale, 99)
	if err != nil {
		log.Fatal(err)
	}
	stream := g.Edges(edges)
	rows := make([]gb.Index, batch)
	cols := make([]gb.Index, batch)
	vals := make([]uint64, batch)
	for k := range vals {
		vals[k] = 1
	}

	fmt.Printf("replaying %d updates (batch %d, scale %d) through each configuration\n\n", edges, batch, scale)
	fmt.Printf("%-30s %14s %16s\n", "configuration", "updates/s", "slow-mem traffic")
	for _, cfg := range configs {
		h, err := hier.New[uint64](1<<scale, 1<<scale, hier.Config{Cuts: cfg.cuts})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for done := 0; done < edges; done += batch {
			n := batch
			if edges-done < n {
				n = edges - done
			}
			for k := 0; k < n; k++ {
				rows[k] = stream[done+k].Row
				cols[k] = stream[done+k].Col
			}
			if err := h.Update(rows[:n], cols[:n], vals[:n]); err != nil {
				log.Fatal(err)
			}
		}
		// Flat matrices only materialize on query; force the comparison to
		// include that cost so "flat" pays for its deferred work.
		if _, err := h.Flush(); err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start).Seconds()
		st := h.Stats()
		var moved int64
		if n := len(st.CascadedEntries); n >= 2 {
			// Traffic that reached the top (slowest) level.
			moved = st.CascadedEntries[n-2]
		}
		fmt.Printf("%-30s %14s %15dx\n", cfg.name, bench.Eng(float64(edges)/elapsed), moved)
	}

	fmt.Println("\nreading the table: deeper hierarchies with small c1 keep merges in")
	fmt.Println("cache but cascade more often; large c1 amortizes better for this")
	fmt.Println("batch size. The optimum depends on batch size and key skew, which")
	fmt.Println("is exactly why the cuts are exposed as tuning parameters.")
}
