// Netingest: the network ingest service end to end, in one process. The
// paper's 75B inserts/second come from thousands of distributed producers
// feeding hierarchical hypersparse matrices; this example is that shape
// in miniature — a TCP server fronting one sharded matrix, several
// producer connections streaming power-law traffic into it through the
// auto-batching client, and an analyst connection watching the merged
// whole. In deployment the pieces split into processes: `hhgb-serve` is
// the server, `trafficgen -connect` the producers, and any hhgbclient
// user the analyst.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"hhgb"
	"hhgb/hhgbclient"
	"hhgb/internal/powerlaw"
	"hhgb/internal/server"
)

func main() {
	log.SetFlags(0)

	const (
		scale     = 24 // 2^24 addresses
		producers = 3
		batches   = 50
		batchSize = 10_000
	)

	// The service: one sharded matrix behind a loopback listener. A
	// durable deployment would add hhgb.WithDurability(dir) here — the
	// protocol is identical, and a client Flush then guarantees the
	// acked stream survives kill -9.
	m, err := hhgb.NewSharded(1 << scale)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{Matrix: m})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	fmt.Printf("server: %s (dim 2^%d, %d shards)\n\n", addr, scale, m.Shards())

	// Producers: one connection each, streaming R-MAT batches through the
	// client's auto-batching Append. Acks pipeline under the hood; Flush
	// is each producer's commit point.
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			g, err := powerlaw.NewRMAT(scale, uint64(p)+1)
			if err != nil {
				log.Fatal(err)
			}
			c, err := hhgbclient.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			src := make([]uint64, batchSize)
			dst := make([]uint64, batchSize)
			for b := 0; b < batches; b++ {
				for k := range src {
					e := g.Edge()
					src[k], dst[k] = e.Row, e.Col
				}
				if err := c.Append(src, dst); err != nil {
					log.Fatal(err)
				}
			}
			if err := c.Flush(); err != nil {
				log.Fatal(err)
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := producers * batches * batchSize
	fmt.Printf("streamed %d updates over %d connections in %.2fs (%.1f M inserts/s)\n\n",
		total, producers, elapsed.Seconds(), float64(total)/elapsed.Seconds()/1e6)

	// The analyst: a separate connection sees the merged matrix — the
	// same queries hhgb.Sharded answers locally, over the wire.
	c, err := hhgbclient.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	sum, err := c.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("summary: %d entries, %d sources, %d destinations, %d packets\n",
		sum.Entries, sum.Sources, sum.Destinations, sum.TotalPackets)
	top, err := c.TopSources(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top sources over the wire:")
	for i, t := range top {
		fmt.Printf("  %d. %-12d %d packets\n", i+1, t.ID, t.Value)
	}

	// Shut down: drain connections, then the matrix.
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	st := srv.Stats()
	fmt.Printf("\nserver counters: %d conns, %d batches, %d entries, %d overloads\n",
		st.TotalConns, st.InsertBatches, st.InsertEntries, st.Overloads)
	if err := m.Close(); err != nil {
		log.Fatal(err)
	}
}
