// D4M associative arrays: the string-keyed workflow of the paper's prior
// systems. Shows construction from triples, algebra (addition, transpose),
// range queries, and the hierarchical variant — plus why string keys cost
// more than the integer-keyed GraphBLAS path.
package main

import (
	"fmt"
	"log"

	"hhgb/internal/assoc"
)

func main() {
	log.SetFlags(0)

	// Network logs as triples: (source host, service, hit count).
	a, err := assoc.FromTriples(
		[]string{"web-01", "web-01", "db-01", "web-02"},
		[]string{"svc:http", "svc:ssh", "svc:mysql", "svc:http"},
		[]float64{120, 3, 77, 98},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("A =", a)

	// Another day's logs.
	b, err := assoc.FromTriples(
		[]string{"web-01", "db-01", "db-02"},
		[]string{"svc:http", "svc:mysql", "svc:mysql"},
		[]float64{80, 23, 55},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Associative addition unions the keys and sums collisions — the same
	// "+" the hierarchical cascade uses.
	total, err := assoc.Add(a, b)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := total.Value("web-01", "svc:http")
	fmt.Printf("A+B: web-01/svc:http = %v (120 + 80)\n", v)

	// Range query: every service column starting with "svc:m".
	mysql, err := total.SubsrefColsPrefix("svc:m")
	if err != nil {
		log.Fatal(err)
	}
	rows, cols, vals := mysql.Triples()
	fmt.Println("columns with prefix svc:m:")
	for k := range rows {
		fmt.Printf("  %-8s %-10s %v\n", rows[k], cols[k], vals[k])
	}

	// Row sums = per-host totals; transpose swaps the view.
	keys, sums, err := total.SumRows()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-host totals:")
	for k := range keys {
		fmt.Printf("  %-8s %v\n", keys[k], sums[k])
	}
	tr, err := total.Transpose()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("transposed:", tr)

	// The hierarchical variant: same cascade as the GraphBLAS version,
	// but every level carries sorted string-key lists — the reason
	// "Hierarchical D4M" sits a decade of log-scale below "Hierarchical
	// GraphBLAS" in the paper's Fig. 2.
	h, err := assoc.NewHier([]int{4, 64})
	if err != nil {
		log.Fatal(err)
	}
	for day := 0; day < 10; day++ {
		if err := h.Update(
			[]string{fmt.Sprintf("host-%02d", day%3), "web-01"},
			[]string{"svc:http", "svc:http"},
			[]float64{1, 1},
		); err != nil {
			log.Fatal(err)
		}
	}
	q, err := h.Query()
	if err != nil {
		log.Fatal(err)
	}
	hv, _ := q.Value("web-01", "svc:http")
	fmt.Printf("hierarchical assoc: web-01/svc:http = %v after 10 days, cascades = %v\n",
		hv, h.Cascades())
}
