// Botnet detection: the adversarial-traffic use case from the paper's
// introduction. A command-and-control (C2) botnet is injected into
// background traffic; the accumulated hierarchical traffic matrix is then
// mined with GraphBLAS graph algorithms — fan-out ranking to shortlist
// suspects, BFS from the C2 host to recover the bot set, and k-truss to
// isolate the densely meshed peer-to-peer core.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"hhgb/internal/algo"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/stats"
	"hhgb/internal/trace"
)

func main() {
	log.SetFlags(0)

	const dim = trace.IPv4Space
	h, err := hier.New[uint64](dim, dim, hier.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Background: benign power-law traffic.
	gen, err := trace.NewGenerator(0x5afe)
	if err != nil {
		log.Fatal(err)
	}
	observe := func(rows, cols []gb.Index) {
		vals := make([]uint64, len(rows))
		for k := range vals {
			vals[k] = 1
		}
		if err := h.Update(rows, cols, vals); err != nil {
			log.Fatal(err)
		}
	}
	for batch := 0; batch < 20; batch++ {
		flows := gen.Batch(10_000)
		rows := make([]gb.Index, len(flows))
		cols := make([]gb.Index, len(flows))
		for k, f := range flows {
			rows[k] = trace.IPv4ToIndex(f.Src)
			cols[k] = trace.IPv4ToIndex(f.Dst)
		}
		observe(rows, cols)
	}

	// Inject the botnet: one C2 host commanding 500 bots (star), with the
	// bots also meshed peer-to-peer (a dense triangle-rich core).
	rng := rand.New(rand.NewPCG(7, 11))
	c2 := gb.Index(0xC2C2C2C2)
	botSet := make(map[gb.Index]bool)
	for len(botSet) < 500 {
		botSet[gb.Index(0xB0000000+uint64(rng.Uint32()%0xFFFFFF))] = true
	}
	bots := make([]gb.Index, 0, len(botSet))
	for b := range botSet {
		bots = append(bots, b)
	}
	var rows, cols []gb.Index
	for _, b := range bots {
		// C2 <-> bot beaconing.
		rows = append(rows, c2, b)
		cols = append(cols, b, c2)
	}
	for i := 0; i < len(bots); i++ {
		for j := i + 1; j < len(bots); j++ {
			if rng.Uint32()%100 < 30 { // 30% P2P mesh
				rows = append(rows, bots[i], bots[j])
				cols = append(cols, bots[j], bots[i])
			}
		}
	}
	observe(rows, cols)
	fmt.Printf("ingested background + botnet: %d updates in %d batches\n",
		h.Stats().Updates, h.Stats().Batches)

	// Analysis starts with one query of the cascade.
	m, err := h.Query()
	if err != nil {
		log.Fatal(err)
	}
	sum, err := stats.Summarize(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traffic matrix: %d entries, %d sources, max fan-out %d\n\n",
		sum.Entries, sum.Sources, sum.MaxOutDegree)

	// Step 1: fan-out ranking shortlists hub suspects. Benign supernodes
	// (CDNs, resolvers) rank here too — fan-out alone cannot convict.
	od, err := stats.OutDegrees(m)
	if err != nil {
		log.Fatal(err)
	}
	top, err := stats.TopK(od, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fan-out shortlist:")
	for rank, e := range top {
		ip, _ := trace.IndexToIPv4(e.Index)
		marker := ""
		if e.Index == c2 {
			marker = "  <- injected C2"
		}
		fmt.Printf("  %d. %-15s %4d peers%s\n", rank+1, trace.FormatIPv4(ip), e.Value, marker)
	}

	// Step 2: discriminate by neighborhood mesh density. A benign hub's
	// peers rarely talk to each other; C2 bots do (P2P mesh). For each
	// suspect, BFS finds the one-hop peers and the extracted peer-to-peer
	// submatrix gives the density.
	fmt.Println("\nneighborhood mesh density (peer-to-peer edges / possible):")
	var suspect gb.Index
	bestDensity := -1.0
	for _, e := range top {
		reach, err := algo.BFS(m, e.Index)
		if err != nil {
			log.Fatal(err)
		}
		var peers []gb.Index
		reach.Iterate(func(v gb.Index, d uint64) bool {
			if d == 1 {
				peers = append(peers, v)
			}
			return true
		})
		if len(peers) < 2 {
			continue
		}
		sub, err := gb.Extract(m, peers, peers)
		if err != nil {
			log.Fatal(err)
		}
		possible := float64(len(peers)) * float64(len(peers)-1)
		density := float64(sub.NVals()) / possible
		ip, _ := trace.IndexToIPv4(e.Index)
		marker := ""
		if e.Index == c2 {
			marker = "  <- injected C2"
		} else if botSet[e.Index] {
			marker = "  <- injected bot"
		}
		fmt.Printf("  %-15s %4d peers  density %.4f%s\n", trace.FormatIPv4(ip), len(peers), density, marker)
		if density > bestDensity {
			bestDensity = density
			suspect = e.Index
		}
	}
	// Any member of the mesh convicts the botnet; bots are just as dense
	// as the C2 from inside.
	if suspect != c2 && !botSet[suspect] {
		log.Fatalf("detection failed: densest suspect %x is not in the injected botnet", suspect)
	}
	fmt.Printf("\nconvicted: densest suspect is inside the injected botnet (density %.3f vs ~0.01-0.04 benign)\n", bestDensity)

	// Step 3: k-truss over the convicted suspect's neighborhood recovers
	// the bot roster (the triangle-rich P2P core).
	reach, err := algo.BFS(m, suspect)
	if err != nil {
		log.Fatal(err)
	}
	var nb []gb.Index
	reach.Iterate(func(v gb.Index, d uint64) bool {
		if d <= 1 {
			nb = append(nb, v)
		}
		return true
	})
	sub, err := gb.Extract(m, nb, nb)
	if err != nil {
		log.Fatal(err)
	}
	tri, err := algo.TriangleCount(sub)
	if err != nil {
		log.Fatal(err)
	}
	truss, err := algo.KTruss(sub, 4)
	if err != nil {
		log.Fatal(err)
	}
	// Extract relabels indices to positions in nb; map back to host ids.
	meshVerts := map[gb.Index]bool{}
	truss.Iterate(func(i, j gb.Index, _ uint64) bool {
		meshVerts[nb[i]] = true
		meshVerts[nb[j]] = true
		return true
	})
	inBotnet := 0
	for v := range meshVerts {
		if v == c2 || botSet[v] {
			inBotnet++
		}
	}
	fmt.Printf("\nsuspect neighborhood: %d triangles; 4-truss core spans %d hosts, %d of them injected botnet members\n",
		tri, len(meshVerts), inBotnet)
	if len(meshVerts) == 0 {
		log.Fatal("detection failed: no mesh core found")
	}
	fmt.Println("\nverdict: dense beaconing star + triangle-rich peer mesh = botnet signature")
}
