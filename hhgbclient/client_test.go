package hhgbclient_test

import (
	"bufio"
	"errors"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hhgb"
	"hhgb/hhgbclient"
	"hhgb/internal/server"
)

// startServer runs an in-process ingest server over a fresh matrix.
func startServer(t *testing.T, dim uint64, cfg server.Config) (*server.Server, *hhgb.Sharded, string) {
	t.Helper()
	m, err := hhgb.NewSharded(dim, hhgb.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	cfg.Matrix = m
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, m, ln.Addr().String()
}

func TestClientRoundTrip(t *testing.T) {
	_, _, addr := startServer(t, 1<<20, server.Config{})
	c, err := hhgbclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Dim() != 1<<20 || c.Shards() != 2 || c.Durable() {
		t.Fatalf("handshake: dim %d shards %d durable %v", c.Dim(), c.Shards(), c.Durable())
	}
	if err := c.Append([]uint64{7, 7}, []uint64{8, 8}); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendWeighted([]uint64{9}, []uint64{10}, []uint64{5}); err != nil {
		t.Fatal(err)
	}
	// Program order: a query right after Append observes it (the local
	// buffer ships ahead of the query frame).
	v, found, err := c.Lookup(7, 8)
	if err != nil || !found || v != 2 {
		t.Fatalf("Lookup(7,8) = %d, %v, %v; want 2", v, found, err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Entries != 2 || sum.TotalPackets != 7 {
		t.Fatalf("Summary = %+v", sum)
	}
	top, err := c.TopSources(1)
	if err != nil || len(top) != 1 || top[0] != (hhgb.Ranked{ID: 9, Value: 5}) {
		t.Fatalf("TopSources = %v, %v", top, err)
	}
	dsts, err := c.TopDestinations(2)
	if err != nil || len(dsts) != 2 || dsts[0] != (hhgb.Ranked{ID: 10, Value: 5}) {
		t.Fatalf("TopDestinations = %v, %v", dsts, err)
	}
	if err := c.Checkpoint(); !errors.Is(err, hhgbclient.ErrRejected) {
		t.Fatalf("Checkpoint on non-durable server = %v, want ErrRejected", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Append([]uint64{1}, []uint64{2}); !errors.Is(err, hhgbclient.ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

// streamDeterministic appends batches*perBatch edges in a client-unique
// region and returns the edges for the reference matrix.
func streamDeterministic(t *testing.T, c *hhgbclient.Client, id, batches, perBatch int, dim uint64) (src, dst, wgt []uint64) {
	t.Helper()
	for b := 0; b < batches; b++ {
		s := make([]uint64, perBatch)
		d := make([]uint64, perBatch)
		w := make([]uint64, perBatch)
		for k := 0; k < perBatch; k++ {
			x := uint64(id)<<32 | uint64(b*perBatch+k)
			s[k] = (x * 2654435761) % dim
			d[k] = (x*2246822519 + 3) % dim
			w[k] = uint64(k%7 + 1)
		}
		if err := c.AppendWeighted(s, d, w); err != nil {
			t.Errorf("client %d: %v", id, err)
			return
		}
		src = append(src, s...)
		dst = append(dst, d...)
		wgt = append(wgt, w...)
	}
	return src, dst, wgt
}

// TestConcurrentClientsMatchReference streams from several concurrent
// clients and proves the server matrix ends bit-identical to a flat
// reference fed the same stream.
func TestConcurrentClientsMatchReference(t *testing.T) {
	const (
		dim      = uint64(1) << 24
		clients  = 4
		batches  = 30
		perBatch = 257 // deliberately not a divisor of the flush threshold
	)
	_, m, addr := startServer(t, dim, server.Config{})
	var (
		mu               sync.Mutex
		refS, refD, refW []uint64
		wg               sync.WaitGroup
	)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := hhgbclient.Dial(addr, hhgbclient.WithFlushEntries(512))
			if err != nil {
				t.Error(err)
				return
			}
			s, d, w := streamDeterministic(t, c, id, batches, perBatch, dim)
			if err := c.Flush(); err != nil {
				t.Errorf("client %d flush: %v", id, err)
			}
			if err := c.Close(); err != nil {
				t.Errorf("client %d close: %v", id, err)
			}
			mu.Lock()
			refS = append(refS, s...)
			refD = append(refD, d...)
			refW = append(refW, w...)
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	ref, err := hhgb.New(dim)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.UpdateWeighted(refS, refD, refW); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, m, ref)
}

// assertSameState compares a sharded matrix's full contents and summary
// against a flat reference.
func assertSameState(t *testing.T, got *hhgb.Sharded, want *hhgb.TrafficMatrix) {
	t.Helper()
	type cell struct{ s, d, v uint64 }
	var g, w []cell
	if err := got.Do(func(s, d, v uint64) bool { g = append(g, cell{s, d, v}); return true }); err != nil {
		t.Fatal(err)
	}
	if err := want.Do(func(s, d, v uint64) bool { w = append(w, cell{s, d, v}); return true }); err != nil {
		t.Fatal(err)
	}
	if len(g) != len(w) {
		t.Fatalf("entry count %d != reference %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("entry %d: %+v != reference %+v", i, g[i], w[i])
		}
	}
	gs, err := got.Summary()
	if err != nil {
		t.Fatal(err)
	}
	ws, err := want.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if gs != ws {
		t.Fatalf("summary %+v != reference %+v", gs, ws)
	}
}

// TestBatchedVsSingleFrameThroughput is the loopback half of the
// BENCH_net.json claim: batched insert frames must beat single-entry
// frames by at least 5x (cmd/hhgb-netbench measures the full sweep).
func TestBatchedVsSingleFrameThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison in -short mode")
	}
	const dim = uint64(1) << 24
	const entries = 20_000
	src := make([]uint64, entries)
	dst := make([]uint64, entries)
	for i := range src {
		src[i] = (uint64(i) * 2654435761) % dim
		dst[i] = (uint64(i)*2246822519 + 3) % dim
	}
	run := func(flushEntries int) float64 {
		_, _, addr := startServer(t, dim, server.Config{})
		c, err := hhgbclient.Dial(addr,
			hhgbclient.WithFlushEntries(flushEntries),
			hhgbclient.WithMaxPending(1024),
			hhgbclient.WithFlushInterval(0))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		start := time.Now()
		if flushEntries == 1 {
			for i := 0; i < entries; i++ {
				if err := c.Append(src[i:i+1], dst[i:i+1]); err != nil {
					t.Fatal(err)
				}
			}
		} else if err := c.Append(src, dst); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		return float64(entries) / time.Since(start).Seconds()
	}
	single := run(1)
	batched := run(4096)
	t.Logf("single-frame: %.0f inserts/s, batched: %.0f inserts/s (%.1fx)", single, batched, batched/single)
	if batched < 5*single {
		t.Fatalf("batched frames %.0f/s < 5x single frames %.0f/s", batched, single)
	}
}

// TestFullWindowConcurrentShippersNoDuplicates drives the narrowest
// pipelining race: a window of one unacked frame, a fast background
// flusher, and several appending goroutines all contending to ship the
// same buffer. Every entry must reach the server exactly once — a
// shipper that sizes its frame before waiting on the window re-sends
// drained entries.
func TestFullWindowConcurrentShippersNoDuplicates(t *testing.T) {
	_, _, addr := startServer(t, 1<<20, server.Config{})
	c, err := hhgbclient.Dial(addr,
		hhgbclient.WithMaxPending(1),
		hhgbclient.WithFlushEntries(64),
		hhgbclient.WithFlushInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const (
		producers = 4
		appends   = 200
		perAppend = 16
	)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			src := make([]uint64, perAppend)
			dst := make([]uint64, perAppend)
			for a := 0; a < appends; a++ {
				for k := range src {
					x := uint64(p)<<40 | uint64(a*perAppend+k)
					src[k] = x % (1 << 20)
					dst[k] = (x * 31) % (1 << 20)
				}
				if err := c.Append(src, dst); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(producers * appends * perAppend); sum.TotalPackets != want {
		t.Fatalf("server holds %d packets, want exactly %d (lost or duplicated frames)", sum.TotalPackets, want)
	}
}

func TestOverloadSurfacesAndReconnectRecovers(t *testing.T) {
	_, _, addr := startServer(t, 1<<20, server.Config{MaxInFlight: 4})
	c, err := hhgbclient.Dial(addr, hhgbclient.WithFlushEntries(8), hhgbclient.WithFlushInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// An 8-entry frame exceeds the server's budget of 4: dropped with an
	// overload error, which must stick.
	if err := c.Append(make([]uint64, 8), make([]uint64, 8)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := c.Err(); !errors.Is(err, hhgbclient.ErrOverloaded) {
		t.Fatalf("sticky error = %v, want ErrOverloaded", err)
	}
	if err := c.Flush(); !errors.Is(err, hhgbclient.ErrOverloaded) {
		t.Fatalf("Flush after overload = %v, want ErrOverloaded", err)
	}
	// The overloaded frame is definitively gone: it must leave the
	// retransmit ring (replaying it after later frames advanced the
	// session frontier would be silently dedup-dropped, masking the loss).
	if n := c.Unacked(); n != 0 {
		t.Fatalf("overloaded frame still in retransmit ring: %d unacked", n)
	}
	// Reconnect acknowledges the loss; smaller batches then fit.
	if err := c.Reconnect(); err != nil {
		t.Fatal(err)
	}
	if err := c.Append([]uint64{1, 2}, []uint64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := c.Summary()
	if err != nil || sum.Entries != 2 {
		t.Fatalf("after reconnect Summary = %+v, %v", sum, err)
	}
}

// TestAutoReconnect severs the client's server and brings a new one up on
// the same address: a loss-free client with WithReconnect resumes
// transparently.
func TestAutoReconnect(t *testing.T) {
	m1, err := hhgb.NewSharded(1<<20, hhgb.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	s1, err := server.New(server.Config{Matrix: m1})
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	go s1.Serve(ln1)

	c, err := hhgbclient.Dial(addr, hhgbclient.WithReconnect())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Append([]uint64{5}, []uint64{6}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil { // all acked: the session is loss-free
		t.Fatal(err)
	}
	s1.Close()

	// Second server, same address, fresh matrix.
	m2, err := hhgb.NewSharded(1<<20, hhgb.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	s2, err := server.New(server.Config{Matrix: m2})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go s2.Serve(ln2)
	defer s2.Close()

	// The first call(s) after the cut may fail while the death is still
	// being noticed; the client must recover without manual Reconnect.
	var sum hhgb.Summary
	deadline := time.Now().Add(10 * time.Second)
	for {
		sum, err = c.Summary()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no auto-reconnect before deadline; last error: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if sum.Entries != 0 {
		t.Fatalf("fresh server Summary = %+v", sum)
	}
	if n := c.Unacked(); n != 0 {
		t.Fatalf("loss-free session holds %d unacked frames after Flush", n)
	}
	if err := c.Append([]uint64{1}, []uint64{2}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, found, err := c.Lookup(1, 2); err != nil || !found || v != 1 {
		t.Fatalf("Lookup after reconnect = %d, %v, %v", v, found, err)
	}
}

// TestRetransmitAfterSeverExactlyOnce severs the connection while insert
// frames may still be unacked in the retransmit ring, brings a new server
// up over the SAME matrix (so the session table survives, as it does
// across a durable server's restart), and proves the resumed session
// replays exactly the frames the first server never applied: the final
// matrix is bit-identical to the sent stream — nothing lost, nothing
// doubled, whichever side of the ack each frame was severed on.
func TestRetransmitAfterSeverExactlyOnce(t *testing.T) {
	const dim = uint64(1) << 20
	m, err := hhgb.NewSharded(dim, hhgb.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	s1, err := server.New(server.Config{Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln1.Addr().String()
	go s1.Serve(ln1)

	c, err := hhgbclient.Dial(addr, hhgbclient.WithReconnect(),
		hhgbclient.WithFlushEntries(32), hhgbclient.WithFlushInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// First half ships ~10 frames; the server dies right behind them, so
	// any suffix may be unacked (or acked but the ack severed) — the
	// retransmit ring owns whatever is in doubt.
	s1a, d1a, w1a := streamDeterministic(t, c, 1, 5, 64, dim)
	s1.Close()

	s2, err := server.New(server.Config{Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go s2.Serve(ln2)
	defer s2.Close()

	// Flush retries until the auto-reconnect lands; success means the ring
	// was replayed under the resumed session and everything is applied.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err = c.Flush(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no reconnect before deadline; last error: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := c.Unacked(); n != 0 {
		t.Fatalf("%d frames unacked after successful Flush", n)
	}

	// Second half proves the resumed session keeps numbering past the
	// frontier instead of colliding with it.
	s1b, d1b, w1b := streamDeterministic(t, c, 2, 5, 64, dim)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	ref, err := hhgb.New(dim)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.UpdateWeighted(append(s1a, s1b...), append(d1a, d1b...), append(w1a, w1b...)); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, m, ref)
}

// startDurableServer runs an in-process server over a durable matrix
// whose WAL fsyncs only at barriers, so the session's durable frontier
// provably trails its accepted one between client Flushes.
func startDurableServer(t *testing.T, dim uint64) (*server.Server, *hhgb.Sharded, string) {
	t.Helper()
	m, err := hhgb.NewSharded(dim, hhgb.WithShards(2),
		hhgb.WithDurability(t.TempDir()), hhgb.WithSyncEvery(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	s, err := server.New(server.Config{Matrix: m})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, m, ln.Addr().String()
}

// TestFreshProcessResumeDoesNotLoseNewData is the cross-process resume
// regression: a client flushes a commit point, streams more (acked but
// never flushed), and dies with its retransmit ring. A new process
// resuming the pinned session must mint its seqs above the server's
// minting floor (Welcome.HighSeq, the accepted frontier) — seeding from
// LastSeq (the durable frontier) made it reuse the dead process's seqs,
// and the server acked its new batches as duplicates without applying
// them.
func TestFreshProcessResumeDoesNotLoseNewData(t *testing.T) {
	const dim = uint64(1) << 20
	srv, m, addr := startDurableServer(t, dim)

	batch := func(base uint64) (src, dst, wgt []uint64) {
		for k := uint64(0); k < 4; k++ {
			src = append(src, base+k)
			dst = append(dst, base+k+100)
			wgt = append(wgt, 1)
		}
		return
	}

	c1, err := hhgbclient.Dial(addr, hhgbclient.WithSession("proc-sess"),
		hhgbclient.WithFlushEntries(4), hhgbclient.WithFlushInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	s1, d1, w1 := batch(1000)
	if err := c1.AppendWeighted(s1, d1, w1); err != nil {
		t.Fatal(err)
	}
	if err := c1.Flush(); err != nil { // the process's commit point
		t.Fatal(err)
	}
	s2, d2, w2 := batch(2000)
	if err := c1.AppendWeighted(s2, d2, w2); err != nil {
		t.Fatal(err)
	}
	// "Process death" mid-interval: abandon c1 without Close — a Goodbye
	// would drain with a full Flush and advance the durable frontier,
	// hiding the gap. Wait until the server accepted the in-flight frame
	// (the dead process's ack may or may not have arrived; irrelevant),
	// leaving accepted ahead of durable — the exact gap a fresh process
	// used to mint into.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().InsertBatches < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("server never accepted the unflushed frame (batches=%d)", srv.Stats().InsertBatches)
		}
		time.Sleep(2 * time.Millisecond)
	}

	c2, err := hhgbclient.Dial(addr, hhgbclient.WithSession("proc-sess"),
		hhgbclient.WithFlushEntries(4), hhgbclient.WithFlushInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	s3, d3, w3 := batch(3000)
	if err := c2.AppendWeighted(s3, d3, w3); err != nil {
		t.Fatal(err)
	}
	if err := c2.Flush(); err != nil {
		t.Fatal(err)
	}

	ref, err := hhgb.New(dim)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range [][3][]uint64{{s1, d1, w1}, {s2, d2, w2}, {s3, d3, w3}} {
		if err := ref.UpdateWeighted(b[0], b[1], b[2]); err != nil {
			t.Fatal(err)
		}
	}
	assertSameState(t, m, ref)
}

// TestMaxRingAutoBarrierBoundsRing pins WithMaxRing: on a durable server
// a producer that never calls Flush must not grow the retransmit ring
// past the bound — the client inserts its own pipelined Flush barriers,
// whose acks let the ring forget covered frames.
func TestMaxRingAutoBarrierBoundsRing(t *testing.T) {
	const dim = uint64(1) << 20
	_, m, addr := startDurableServer(t, dim)
	c, err := hhgbclient.Dial(addr, hhgbclient.WithSession("ring-sess"),
		hhgbclient.WithFlushEntries(1), hhgbclient.WithFlushInterval(0),
		hhgbclient.WithMaxRing(8))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// 256 one-entry frames, never an explicit Flush. Without the auto
	// barrier every one of them would sit in the ring (acks alone do not
	// retire frames on a durable server).
	src, dst, wgt := make([]uint64, 0, 256), make([]uint64, 0, 256), make([]uint64, 0, 256)
	for k := uint64(0); k < 256; k++ {
		src = append(src, k+1)
		dst = append(dst, k+500)
		wgt = append(wgt, 1)
		if err := c.AppendWeighted(src[k:], dst[k:], wgt[k:]); err != nil {
			t.Fatal(err)
		}
	}
	// The bound is approximate while streaming (frames in flight when a
	// barrier trips still join the ring), but once the producer goes
	// quiet the barriers chain until the ring converges below the bound
	// — nowhere near the 256 an unbounded ring would hold. Poll: ring
	// trimming rides async acks.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := c.Unacked(); n < 8 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("ring held %d frames, want < 8 (auto barriers never trimmed)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := c.Unacked(); n != 0 {
		t.Fatalf("%d frames unacked after explicit Flush", n)
	}
	ref, err := hhgb.New(dim)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.UpdateWeighted(src, dst, wgt); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, m, ref)
}

// buildServe compiles cmd/hhgb-serve once per test run.
func buildServe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hhgb-serve")
	cmd := exec.Command("go", "build", "-o", bin, "hhgb/cmd/hhgb-serve")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building hhgb-serve: %v\n%s", err, out)
	}
	return bin
}

// TestKillNineDurableServerRecovers is the acceptance-criterion test: a
// durable server is killed with SIGKILL mid-stream, and the recovered
// directory must hold a state bit-identical to everything the clients
// were durably acked — proven against a flat reference matrix fed exactly
// the acked stream, via full iteration and the pushdown queries.
func TestKillNineDurableServerRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill -9 test in -short mode")
	}
	bin := buildServe(t)
	dir := filepath.Join(t.TempDir(), "state")
	const dim = uint64(1) << 20

	// -sync-every huge: the WAL fsyncs only at barriers (client Flush /
	// Checkpoint), so the post-checkpoint tail is guaranteed undurable —
	// the sharpest possible crash window.
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-scale", "20", "-shards", "2",
		"-durable", dir, "-sync-every", "1000000")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatalf("server never reported its address (scan err %v)", sc.Err())
	}

	// Concurrent clients stream their loads; Flush guarantees every batch
	// is applied and fsynced before we record the reference.
	const clients = 2
	var (
		mu               sync.Mutex
		refS, refD, refW []uint64
		wg               sync.WaitGroup
		conns            [clients]*hhgbclient.Client
	)
	for id := 0; id < clients; id++ {
		c, err := hhgbclient.Dial(addr, hhgbclient.WithFlushEntries(256))
		if err != nil {
			t.Fatal(err)
		}
		if !c.Durable() {
			t.Fatal("server did not report durability")
		}
		conns[id] = c
		wg.Add(1)
		go func(id int, c *hhgbclient.Client) {
			defer wg.Done()
			s, d, w := streamDeterministic(t, c, id, 25, 199, dim)
			if err := c.Flush(); err != nil {
				t.Errorf("client %d flush: %v", id, err)
				return
			}
			mu.Lock()
			refS = append(refS, s...)
			refD = append(refD, d...)
			refW = append(refW, w...)
			mu.Unlock()
		}(id, conns[id])
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Record the acked state through the wire, then checkpoint it.
	ackedSum, err := conns[0].Summary()
	if err != nil {
		t.Fatal(err)
	}
	ackedTop, err := conns[0].TopSources(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := conns[0].Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Undurable tail: accepted, maybe acked, never flushed — its loss is
	// exactly what group commit promises.
	for id, c := range conns {
		tail := make([]uint64, 256)
		for k := range tail {
			tail[k] = uint64(id*1000 + k + 1)
		}
		if err := c.Append(tail, tail); err != nil {
			t.Fatal(err)
		}
	}

	killed = true
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no checkpoint
		t.Fatal(err)
	}
	cmd.Wait()

	// Recover in-process (the kernel released the dead server's flock).
	rec, err := hhgb.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	ref, err := hhgb.New(dim)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.UpdateWeighted(refS, refD, refW); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, rec, ref)

	recSum, err := rec.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if recSum != ackedSum {
		t.Fatalf("recovered Summary %+v != acked-over-the-wire %+v", recSum, ackedSum)
	}
	recTop, err := rec.TopSources(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recTop) != len(ackedTop) {
		t.Fatalf("recovered TopSources %v != acked %v", recTop, ackedTop)
	}
	for i := range recTop {
		if recTop[i] != ackedTop[i] {
			t.Fatalf("recovered TopSources[%d] %+v != acked %+v", i, recTop[i], ackedTop[i])
		}
	}
	// Spot-check pushdown lookups across the acked stream.
	for i := 0; i < len(refS); i += 997 {
		want, wantFound, err := ref.Lookup(refS[i], refD[i])
		if err != nil {
			t.Fatal(err)
		}
		got, gotFound, err := rec.Lookup(refS[i], refD[i])
		if err != nil || got != want || gotFound != wantFound {
			t.Fatalf("Lookup(%d,%d) = %d,%v,%v; want %d,%v", refS[i], refD[i], got, gotFound, err, want, wantFound)
		}
	}
	// The tail must be gone: recovery restored the checkpoint exactly.
	if v, found, err := rec.Lookup(1001, 1001); err != nil || found {
		t.Fatalf("undurable tail cell survived: %d, %v, %v", v, found, err)
	}
}
