// Package hhgbclient is the streaming client for the hhgb network ingest
// service (internal/server, cmd/hhgb-serve): it turns a TCP connection
// into something that feels like a local hhgb.Sharded — an auto-batching
// Append fast path plus the analysis round-trips — while pipelining
// acknowledgements under the hood.
//
//	c, _ := hhgbclient.Dial("ingest:4739")
//	_ = c.Append(srcs, dsts)       // buffered; frames ship at the threshold
//	_ = c.Flush()                  // applied (+fsynced on a durable server)
//	top, _ := c.TopSources(10)
//	_ = c.Close()
//
// Against a windowed server (Window reports its duration from the
// handshake), appends carry event timestamps and the temporal queries
// open up:
//
//	_ = c.AppendAt(pktTime, srcs, dsts)        // frames cut at window bounds
//	sum, _ := c.RangeSummary(t0, t1)           // only the windows in range
//	cancel, _ := c.Subscribe(0, func(ws hhgb.WindowSummary) { ... })
//
// # Batching and pipelining
//
// Append copies entries into a local buffer; every WithFlushEntries
// entries (default 4096) the buffer ships as one insert frame, without
// waiting for the ack — up to WithMaxPending frames (default 64) ride the
// wire at once, so throughput is bounded by the pipe, not the round-trip.
// A background ticker (WithFlushInterval, default 100ms) ships a partial
// buffer so a trickling stream is never stranded locally; Flush, the
// queries, and Close ship it deterministically.
//
// # Error and durability semantics
//
// An insert ack means the server accepted the batch into its ingest
// pipeline. Flush returns once the server acked its flush — every batch
// this client appended before the call is applied and, on a durable
// server (Durable reports it), fsynced: it survives a server kill -9 from
// that point on. Checkpoint additionally compacts the server's logs.
//
// Asynchronous failures (a rejected batch, an overloaded server dropping
// a frame, a broken connection) are sticky: the first one is returned by
// every subsequent call, so a producer loop cannot silently stream into
// a black hole. Test with errors.Is against ErrOverloaded, ErrRejected,
// ErrServerClosed, and ErrDisconnected.
//
// # Sessions, reconnect, and exactly-once
//
// Every client speaks an exactly-once session: Dial picks a random
// session identifier (pin one with WithSession), every insert frame's
// seq becomes the server's (session, seq) dedup key, and the client
// keeps each sent-but-unacked frame in a retransmit ring. When the
// connection dies, nothing is in doubt:
//
//   - Batches still buffered locally (never sent) carry over and ship
//     normally.
//   - Batches sent but unacked stay in the ring. On reconnect (explicit
//     Reconnect, or the next call with WithReconnect) the client resumes
//     its session; the server's Welcome reports the session's highest
//     safely-applied seq, the client drops ring frames at or below it,
//     and retransmits the rest in order. A frame the server had already
//     applied — the ack was lost in transit — is recognized by its seq
//     and acked again without re-applying, so nothing double-counts.
//   - On a durable server, acked frames stay in the ring until a Flush
//     or Checkpoint ack covers them: a server kill -9 may lose acked but
//     un-fsynced batches, and the reconnecting client retransmits
//     exactly those. The ring is bounded: after WithMaxRing frames
//     (default DefaultMaxRing) the client pipelines a Flush barrier on
//     its own. Explicit Flush at your commit points still bounds what a
//     client crash can leave in doubt.
//
// The two losses sessions cannot absorb are explicit, never silent: an
// overloaded or rejected batch was definitively dropped by the server
// (sticky ErrOverloaded/ErrRejected — retransmitting it could reorder
// the stream, so the producer decides), and a client process crash loses
// the ring itself (resuming a pinned session then continues with fresh
// seqs above the server's minting floor, so new data is never mistaken
// for a retransmission; frames the dead process sent but never got
// flushed stay in doubt).
package hhgbclient

import (
	"crypto/rand"
	"crypto/tls"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"hhgb"
	"hhgb/internal/proto"
)

// Sticky client errors; test with errors.Is.
var (
	// ErrClosed: the client was closed locally.
	ErrClosed = errors.New("hhgbclient: client is closed")
	// ErrOverloaded: the server's in-flight budget dropped a batch.
	ErrOverloaded = errors.New("hhgbclient: server overloaded, batch dropped")
	// ErrRejected: the server refused a batch (validation) or request.
	ErrRejected = errors.New("hhgbclient: request rejected by server")
	// ErrServerClosed: the server's matrix is closed or draining.
	ErrServerClosed = errors.New("hhgbclient: server is closed")
	// ErrDisconnected: the connection died (dial again, or WithReconnect).
	ErrDisconnected = errors.New("hhgbclient: connection lost")
)

// Defaults for the Dial options.
const (
	DefaultFlushEntries  = 4096
	DefaultFlushInterval = 100 * time.Millisecond
	DefaultMaxPending    = 64
	DefaultMaxRing       = 1024
)

// Option configures Dial.
type Option func(*options) error

type options struct {
	flushEntries  int
	flushInterval time.Duration
	intervalSet   bool
	maxPending    int
	maxRing       int
	dialTimeout   time.Duration
	reconnect     bool
	session       string
	tls           *tls.Config
	ackLatency    func(time.Duration)
}

// WithFlushEntries sets the auto-batching threshold in entries: the local
// buffer ships as one insert frame when it reaches n (1 sends every entry
// as its own frame — the unbatched baseline; cap proto.MaxBatch).
func WithFlushEntries(n int) Option {
	return func(o *options) error {
		if n < 1 || n > proto.MaxBatch {
			return fmt.Errorf("hhgbclient: flush threshold %d outside [1, %d]", n, proto.MaxBatch)
		}
		o.flushEntries = n
		return nil
	}
}

// WithFlushInterval sets the background flush period for partial buffers;
// 0 disables the ticker (Flush/queries/Close still ship the buffer).
func WithFlushInterval(d time.Duration) Option {
	return func(o *options) error {
		if d < 0 {
			return fmt.Errorf("hhgbclient: negative flush interval %v", d)
		}
		o.flushInterval = d
		o.intervalSet = true
		return nil
	}
}

// WithMaxPending bounds how many insert frames may be unacked at once —
// the pipelining window. Append blocks when the window is full, so a slow
// server backpressures the producer instead of buffering without bound.
func WithMaxPending(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("hhgbclient: pending window %d < 1", n)
		}
		o.maxPending = n
		return nil
	}
}

// WithMaxRing bounds the retransmit ring on durable servers: once n sent
// frames await durability cover, the client pipelines an automatic Flush
// barrier (no extra round-trip — it rides the stream like any frame), and
// its ack lets the ring forget everything the barrier covers. Without it
// a producer that never calls Flush would grow the ring — and the
// retransmit burst after a reconnect — without bound, since insert acks
// alone do not survive a server kill -9. The bound is approximate (frames
// already in flight when it trips still join the ring) and a no-op on
// non-durable servers, where acks retire ring frames directly. Explicit
// Flush calls at commit points remain the way to bound what a client
// crash can leave in doubt.
func WithMaxRing(n int) Option {
	return func(o *options) error {
		if n < 1 {
			return fmt.Errorf("hhgbclient: ring bound %d < 1", n)
		}
		o.maxRing = n
		return nil
	}
}

// WithDialTimeout bounds Dial (and each reconnect attempt).
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) error {
		o.dialTimeout = d
		return nil
	}
}

// WithReconnect makes a client whose connection died re-dial on the next
// call instead of failing it; see the package comment for the semantics.
func WithReconnect() Option {
	return func(o *options) error {
		o.reconnect = true
		return nil
	}
}

// WithSession pins the client's exactly-once session identifier instead
// of the random one Dial mints. Use it to resume a stream's session
// across client processes: the reconnect handshake reports the session's
// frontier, and the new process continues above it. Session identifiers
// are at most proto.MaxSession bytes and must not be shared by
// concurrent producers — the dedup key is (session, seq), so two writers
// on one session silently drop each other's frames.
func WithSession(id string) Option {
	return func(o *options) error {
		if id == "" || len(id) > proto.MaxSession {
			return fmt.Errorf("hhgbclient: session id length %d outside [1, %d]", len(id), proto.MaxSession)
		}
		o.session = id
		return nil
	}
}

// WithTLS dials the server over TLS with the given configuration (nil is
// rejected — pass an explicit config, e.g. one whose RootCAs hold the
// server's certificate). Reconnects use it too.
func WithTLS(cfg *tls.Config) Option {
	return func(o *options) error {
		if cfg == nil {
			return errors.New("hhgbclient: WithTLS needs a non-nil config")
		}
		o.tls = cfg
		return nil
	}
}

// WithAckLatency registers an observer invoked with the round-trip time
// of every acked insert frame: ship (or retransmit) to server ack. The
// observer runs on the client's receive goroutine with internal locks
// held — it must be fast and must not call back into the client. Frames
// retransmitted after a reconnect restart their clock at retransmission,
// so a reported latency is always for one wire round trip, not the total
// time in doubt.
func WithAckLatency(fn func(time.Duration)) Option {
	return func(o *options) error {
		if fn == nil {
			return errors.New("hhgbclient: WithAckLatency needs a non-nil observer")
		}
		o.ackLatency = fn
		return nil
	}
}

// call is one pipelined request awaiting its response.
type call struct {
	kind   byte
	done   chan response // nil for inserts (acked in the background)
	sentAt time.Time     // ship time for WithAckLatency; zero when unobserved
}

// sentFrame is one insert frame in the retransmit ring: the encoded body
// (its seq baked in, so a retransmission is byte-identical) plus the kind
// to frame it under.
type sentFrame struct {
	kind byte
	body []byte
}

type response struct {
	err     error
	found   bool
	value   uint64
	top     []hhgb.Ranked
	summary hhgb.Summary
	explain Explain
}

// Client is a connection to a network ingest server. All methods are safe
// for concurrent use; Append calls from multiple goroutines interleave at
// batch granularity.
type Client struct {
	addr    string
	opt     options
	session string // exactly-once session id; constant for the client's life

	mu      sync.Mutex
	cond    *sync.Cond // signaled when the pipeline window opens or the conn dies
	nc      net.Conn
	w       *proto.Writer
	welcome proto.Welcome
	// seq numbers every request frame, monotonically across reconnects —
	// never reset, because insert seqs are the session's dedup keys.
	seq     uint64
	pending map[uint64]*call
	unacked int // pending insert frames
	// sent is the retransmit ring: every insert frame written to the wire
	// and not yet known safe on the server. Non-durable servers: removed
	// on its ack. Durable servers: removed when a Flush/Checkpoint ack
	// covers it (an ack alone does not survive kill -9). On reconnect,
	// frames above the server's reported frontier retransmit in seq
	// order.
	sent map[uint64]sentFrame
	// autoFlush is true while a WithMaxRing-inserted Flush barrier (a
	// pending call with a nil done channel) rides the pipeline; one at a
	// time is enough, since its ack trims the whole ring below it.
	autoFlush bool
	src       []uint64
	dst       []uint64
	wgt       []uint64
	// bufTS is the event-time bucket of the buffered entries (windowed
	// sessions; meaningful only when bufTimed). All buffered entries share
	// one bucket: AppendAt ships the buffer before starting a new one.
	bufTS    int64
	bufTimed bool
	subs     map[uint64]*clientSub // live subscriptions keyed by their seq
	err      error                 // sticky: first async failure
	dead     bool                  // connection-level failure (reconnect can clear)
	// lossErr marks the sticky error as a definitive batch loss
	// (overload, rejection): auto-reconnect must not clear it — only an
	// explicit Reconnect, which acknowledges the loss.
	lossErr bool
	closing bool // Goodbye in flight: the server hanging up is expected
	closed  bool
	gen     int // bumped per (re)connect; receivers tag themselves with it

	tick *time.Ticker
	stop chan struct{}
}

// Dial connects to a server, performs the protocol handshake, and starts
// the background ack receiver (and flush ticker, unless disabled).
func Dial(addr string, opts ...Option) (*Client, error) {
	o := options{
		flushEntries:  DefaultFlushEntries,
		flushInterval: DefaultFlushInterval,
		maxPending:    DefaultMaxPending,
		maxRing:       DefaultMaxRing,
	}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	session := o.session
	if session == "" {
		var raw [16]byte
		if _, err := rand.Read(raw[:]); err != nil {
			return nil, fmt.Errorf("hhgbclient: minting session id: %v", err)
		}
		session = hex.EncodeToString(raw[:])
	}
	c := &Client{addr: addr, opt: o, session: session, stop: make(chan struct{})}
	c.sent = make(map[uint64]sentFrame)
	c.cond = sync.NewCond(&c.mu)
	c.mu.Lock()
	err := c.connectLocked()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if o.flushInterval > 0 {
		c.tick = time.NewTicker(o.flushInterval)
		go c.flusher()
	}
	return c, nil
}

// connectLocked dials and handshakes, replacing the session state. Callers
// hold mu.
func (c *Client) connectLocked() error {
	var (
		nc  net.Conn
		err error
	)
	d := &net.Dialer{Timeout: c.opt.dialTimeout}
	if c.opt.tls != nil {
		nc, err = tls.DialWithDialer(d, "tcp", c.addr, c.opt.tls)
	} else if c.opt.dialTimeout > 0 {
		nc, err = d.Dial("tcp", c.addr)
	} else {
		nc, err = net.Dial("tcp", c.addr)
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	w := proto.NewWriter(nc)
	r := proto.NewReader(nc)
	// The resume seq is the highest seq this client has assigned: zero on
	// the first connect, so the server can tell fresh sessions from
	// resumed ones. The server's Welcome answers with its own (durable)
	// frontier, which is the authoritative one.
	if err := w.WriteFrame(proto.KindHello, proto.AppendHello(nil, c.session, c.seq)); err != nil {
		nc.Close()
		return fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	if err := w.Flush(); err != nil {
		nc.Close()
		return fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	f, err := r.Next()
	if err != nil {
		nc.Close()
		return fmt.Errorf("%w: handshake: %v", ErrDisconnected, err)
	}
	switch f.Kind {
	case proto.KindWelcome:
	case proto.KindError:
		_, code, msg, perr := proto.ParseError(f.Body)
		nc.Close()
		if perr != nil {
			return fmt.Errorf("hhgbclient: handshake: %v", perr)
		}
		return fmt.Errorf("%w: code %d: %s", errForCode(code), code, msg)
	default:
		nc.Close()
		return fmt.Errorf("hhgbclient: handshake reply kind %#x", f.Kind)
	}
	wel, err := proto.ParseWelcome(f.Body)
	if err != nil {
		nc.Close()
		return fmt.Errorf("hhgbclient: handshake: %v", err)
	}
	if c.gen > 0 && (wel.Dim != c.welcome.Dim || wel.Window != c.welcome.Window || wel.Durable != c.welcome.Durable) {
		// A different server answered the session's address. Dedup state
		// means nothing against a different store — refuse loudly rather
		// than resume into it.
		nc.Close()
		return fmt.Errorf("hhgbclient: reconnected to a different server (dim %d→%d, window %d→%d, durable %v→%v)",
			c.welcome.Dim, wel.Dim, c.welcome.Window, wel.Window, c.welcome.Durable, wel.Durable)
	}
	c.nc = nc
	c.w = w
	c.welcome = wel
	c.pending = make(map[uint64]*call)
	c.unacked = 0
	c.autoFlush = false
	c.dead = false
	c.err = nil
	c.gen++
	// The server's frontier covers every ring frame at or below it: those
	// are safely applied (and durable, on a durable server) — drop them.
	for seq := range c.sent {
		if seq <= wel.LastSeq {
			delete(c.sent, seq)
		}
	}
	// A resumed session (e.g. WithSession across a client restart) starts
	// numbering above the server's minting floor — HighSeq, the highest
	// seq its dedup state has ever recorded for the session. LastSeq
	// would not do: it deliberately under-reports (the durable frontier
	// trails the accepted one until a barrier, and after server recovery
	// it is the min over per-shard tables), and minting in
	// (LastSeq, HighSeq] would reuse seqs a dead incarnation's
	// acked-but-unflushed frames already carried — the server would ack
	// the new frames as duplicates without applying them, silently
	// dropping fresh data. The max with LastSeq is defensive: a
	// well-formed Welcome always has HighSeq >= LastSeq.
	if wel.HighSeq > c.seq {
		c.seq = wel.HighSeq
	}
	if wel.LastSeq > c.seq {
		c.seq = wel.LastSeq
	}
	// Subscriptions are per-connection server state: a fresh connection
	// has none, so any survivors of the old one end here (their callbacks
	// stop; re-Subscribe to resume).
	for seq, sub := range c.subs {
		delete(c.subs, seq)
		sub.close()
	}
	c.subs = make(map[uint64]*clientSub)
	go c.receive(r, nc, c.gen)
	// Retransmit the ring in seq order under the resumed session, ahead
	// of any new traffic. The server recognizes every frame it already
	// applied by its seq and just re-acks it.
	if len(c.sent) > 0 {
		seqs := make([]uint64, 0, len(c.sent))
		for seq := range c.sent {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, seq := range seqs {
			fr := c.sent[seq]
			if err := c.w.WriteFrame(fr.kind, fr.body); err != nil {
				c.failLocked(fmt.Errorf("%w: retransmit: %v", ErrDisconnected, err))
				return c.err
			}
			pc := &call{kind: fr.kind}
			if c.opt.ackLatency != nil {
				pc.sentAt = time.Now()
			}
			c.pending[seq] = pc
			c.unacked++
		}
		// A ring already at the WithMaxRing bound (the reconnect burst)
		// gets its barrier right behind the retransmissions.
		c.autoFlushLocked()
		if c.dead {
			return c.err
		}
		if err := c.w.Flush(); err != nil {
			c.failLocked(fmt.Errorf("%w: retransmit: %v", ErrDisconnected, err))
			return c.err
		}
	}
	return nil
}

// errForCode maps a wire error code to the client's sentinel errors.
func errForCode(code uint64) error {
	switch code {
	case proto.ErrCodeOverload:
		return ErrOverloaded
	case proto.ErrCodeRejected:
		return ErrRejected
	case proto.ErrCodeClosed:
		return ErrServerClosed
	default:
		return ErrRejected
	}
}

// receive is the background ack loop of one session (generation tags keep
// a dead session's receiver from touching its successor's state).
func (c *Client) receive(r *proto.Reader, nc net.Conn, gen int) {
	for {
		f, err := r.Next()
		if err != nil {
			c.sessionFailed(gen, fmt.Errorf("%w: %v", ErrDisconnected, err))
			return
		}
		if fatal := c.dispatch(gen, f); fatal {
			return
		}
	}
}

// dispatch routes one response frame; it reports true when the session is
// gone (connection-level error).
func (c *Client) dispatch(gen int, f proto.Frame) (fatal bool) {
	if f.Kind == proto.KindWindowSummary {
		// Unsolicited push, not a response: route to the subscription the
		// frame is tagged with. Frames for a cancelled subscription are
		// discarded — the server pushes until the connection closes.
		ws, err := proto.ParseWindowSummary(f.Body)
		if err != nil {
			c.sessionFailed(gen, fmt.Errorf("%w: %v", ErrDisconnected, err))
			return true
		}
		c.mu.Lock()
		var sub *clientSub
		if gen == c.gen {
			sub = c.subs[ws.Sub]
		}
		c.mu.Unlock()
		if sub != nil {
			sub.push(hhgb.WindowSummary{
				Level:        int(ws.Level),
				Start:        time.Unix(0, int64(ws.Start)),
				End:          time.Unix(0, int64(ws.End)),
				Entries:      int(ws.Entries),
				Sources:      int(ws.Sources),
				Destinations: int(ws.Destinations),
				Packets:      ws.Packets,
			})
		}
		return false
	}
	var seq uint64
	var resp response
	switch f.Kind {
	case proto.KindAck:
		s, err := proto.ParseSeq(f.Body)
		if err != nil {
			c.sessionFailed(gen, fmt.Errorf("%w: %v", ErrDisconnected, err))
			return true
		}
		seq = s
	case proto.KindLookupResp:
		s, found, v, err := proto.ParseLookupResp(f.Body)
		if err != nil {
			c.sessionFailed(gen, fmt.Errorf("%w: %v", ErrDisconnected, err))
			return true
		}
		seq, resp.found, resp.value = s, found, v
	case proto.KindTopKResp:
		s, top, err := proto.ParseTopKResp(f.Body)
		if err != nil {
			c.sessionFailed(gen, fmt.Errorf("%w: %v", ErrDisconnected, err))
			return true
		}
		seq = s
		resp.top = make([]hhgb.Ranked, len(top))
		for i, t := range top {
			resp.top[i] = hhgb.Ranked{ID: t.ID, Value: t.Value}
		}
	case proto.KindSummaryResp:
		s, sum, err := proto.ParseSummaryResp(f.Body)
		if err != nil {
			c.sessionFailed(gen, fmt.Errorf("%w: %v", ErrDisconnected, err))
			return true
		}
		seq = s
		resp.summary = hhgb.Summary{
			Entries:      int(sum.Entries),
			Sources:      int(sum.Sources),
			Destinations: int(sum.Destinations),
			TotalPackets: sum.TotalPackets,
			MaxOutDegree: sum.MaxOutDegree,
			MaxInDegree:  sum.MaxInDegree,
		}
	case proto.KindExplainResp:
		s, e, err := proto.ParseExplainResp(f.Body)
		if err != nil {
			c.sessionFailed(gen, fmt.Errorf("%w: %v", ErrDisconnected, err))
			return true
		}
		seq = s
		resp.explain = explainFromWire(e)
	case proto.KindError:
		s, code, msg, err := proto.ParseError(f.Body)
		if err != nil {
			c.sessionFailed(gen, fmt.Errorf("%w: %v", ErrDisconnected, err))
			return true
		}
		if s == 0 { // connection-level: the server is tearing us down
			c.sessionFailed(gen, fmt.Errorf("%w: code %d: %s", errForCode(code), code, msg))
			return true
		}
		seq = s
		resp.err = fmt.Errorf("%w: code %d: %s", errForCode(code), code, msg)
	default:
		c.sessionFailed(gen, fmt.Errorf("%w: unexpected frame kind %#x", ErrDisconnected, f.Kind))
		return true
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return true
	}
	call, ok := c.pending[seq]
	if !ok {
		if seq <= c.seq {
			// A response for a seq we assigned but no longer wait on: a
			// duplicate delivery (e.g. the network replayed a frame and
			// the server re-acked it). Exactly-once absorbs it silently.
			return false
		}
		// A seq we never assigned: protocol violation from the server.
		c.failLocked(fmt.Errorf("%w: response for unknown seq %d", ErrDisconnected, seq))
		return true
	}
	delete(c.pending, seq)
	if call.kind == proto.KindInsert || call.kind == proto.KindInsertAt {
		c.unacked--
		if c.opt.ackLatency != nil && !call.sentAt.IsZero() {
			c.opt.ackLatency(time.Since(call.sentAt))
		}
		if resp.err != nil {
			// The server dropped this batch (overload, validation): it
			// will never apply, so retransmitting it later could reorder
			// the stream — out of the ring, and the failure is sticky so
			// a producer loop cannot keep streaming into a black hole.
			delete(c.sent, seq)
			if c.err == nil {
				c.err = resp.err
			}
			c.lossErr = true
		} else if !c.welcome.Durable {
			// Accepted on a non-durable server: as safe as it ever gets.
			delete(c.sent, seq)
		}
		c.cond.Broadcast()
		return false
	}
	if call.kind == proto.KindFlush || call.kind == proto.KindCheckpoint {
		if resp.err == nil {
			// The barrier covers every insert acked before it, and program
			// order means every insert seq below the barrier's was acked
			// first: those frames are now fsynced on a durable server — the
			// ring can forget them.
			for s := range c.sent {
				if s < seq {
					delete(c.sent, s)
				}
			}
		}
		if call.done == nil {
			// A WithMaxRing auto-barrier: nobody waits on it. On a
			// per-request error the ring simply stays until the next
			// barrier — explicit or auto — covers it. If frames shipped
			// behind the barrier already refilled the ring to the bound,
			// chain the next one right away: a producer that went quiet
			// mid-burst would otherwise strand a full pipeline window in
			// the ring with no ship left to trigger it.
			c.autoFlush = false
			c.autoFlushLocked()
			if c.autoFlush && !c.dead {
				_ = c.flushWireLocked()
			}
			return false
		}
	}
	call.done <- resp
	return false
}

// sessionFailed marks the session dead and fails every pending call.
func (c *Client) sessionFailed(gen int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen || c.dead {
		return
	}
	c.failLocked(err)
}

// failLocked is the shared connection-death path: record the sticky
// error, fail waiting calls, wake blocked senders. Unacked insert frames
// stay in the retransmit ring — the next connection re-sends them under
// the session, so a dead connection never loses them.
func (c *Client) failLocked(err error) {
	c.dead = true
	if c.err == nil && !c.closed && !c.closing {
		c.err = err
	}
	for seq, call := range c.pending {
		delete(c.pending, seq)
		if call.kind == proto.KindInsert || call.kind == proto.KindInsertAt {
			c.unacked--
		} else if call.done != nil { // nil: a WithMaxRing auto-barrier
			call.done <- response{err: err}
		}
	}
	c.autoFlush = false
	for seq, sub := range c.subs {
		delete(c.subs, seq)
		sub.close()
	}
	if c.nc != nil {
		c.nc.Close()
	}
	c.cond.Broadcast()
}

// ready ensures the session is usable, reconnecting when allowed. Callers
// hold mu.
func (c *Client) readyLocked() error {
	if c.closed {
		return ErrClosed
	}
	if c.dead && c.opt.reconnect && !c.lossErr {
		// A dead connection lost nothing: resume the session, retransmit
		// the ring, carry on. A sticky batch error (overload, rejection)
		// is NOT auto-cleared — the producer must acknowledge the loss
		// via Reconnect.
		if err := c.connectLocked(); err != nil {
			return err
		}
	}
	if c.err != nil {
		return c.err
	}
	if c.dead {
		return ErrDisconnected
	}
	return nil
}

// flusher ships partial buffers on the ticker.
func (c *Client) flusher() {
	for {
		select {
		case <-c.stop:
			return
		case <-c.tick.C:
			c.mu.Lock()
			if !c.closed && !c.dead && c.err == nil && len(c.src) > 0 {
				if err := c.shipBufferLocked(); err == nil {
					_ = c.flushWireLocked()
				}
			}
			c.mu.Unlock()
		}
	}
}

// Dim returns the server matrix's dimension (from the handshake).
func (c *Client) Dim() uint64 { return c.welcome.Dim }

// Shards returns the server matrix's shard count (from the handshake).
func (c *Client) Shards() int { return int(c.welcome.Shards) }

// Durable reports whether the server write-ahead-logs inserts: if true,
// a nil Flush means everything appended before it survives a server
// crash.
func (c *Client) Durable() bool { return c.welcome.Durable }

// Window returns the server's level-0 window duration (from the
// handshake); 0 means the server is flat. On a windowed server use
// AppendAt/AppendWeightedAt — plain Append is refused on both ends.
func (c *Client) Window() time.Duration { return time.Duration(c.welcome.Window) }

// Reconnect explicitly restarts a failed connection — a dead one, or a
// live one poisoned by a sticky batch error (which WithReconnect alone
// never clears): calling it acknowledges any definitive batch loss and
// resumes the session, retransmitting the ring. It is a no-op on a
// healthy connection and fails with ErrClosed after Close.
func (c *Client) Reconnect() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if !c.dead && c.err == nil {
		return nil
	}
	if !c.dead {
		c.failLocked(c.err) // tear the poisoned connection down first
	}
	c.lossErr = false // calling Reconnect acknowledges the loss
	return c.connectLocked()
}

// Session returns the client's exactly-once session identifier — the one
// from WithSession, or the random one Dial minted. Persist it (plus your
// own commit point) to resume the stream from another process.
func (c *Client) Session() string { return c.session }

// Unacked reports the insert frames currently in the retransmit ring:
// sent, but not yet known safe on the server (unacked; or acked but not
// yet covered by a Flush/Checkpoint on a durable server). Zero after a
// successful Flush means everything this client ever appended is applied
// — and durable, on a durable server.
func (c *Client) Unacked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sent)
}

// Err returns the sticky error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Append buffers a batch of (src, dst) observations with weight 1 each,
// shipping full frames as the buffer crosses the flush threshold. It
// blocks only when the pipelining window is full (the server is behind).
// The slices are copied before the call returns. On a windowed server it
// fails — use AppendAt, which carries the event timestamp the server
// routes by.
//
// Append is all-or-nothing: a non-nil error means this call's entries
// were NOT taken (retrying the same batch is safe), while nil means the
// session owns them — buffered, shipped, or riding the retransmit ring —
// even if the connection died mid-call (the failure surfaces on the next
// call; reconnect replays whatever is in flight). Never re-send a batch
// Append accepted: the copy would carry fresh seqs the server cannot
// deduplicate.
func (c *Client) Append(src, dst []uint64) error {
	return c.append(src, dst, nil, 0, false)
}

// AppendWeighted buffers a batch of weighted observations; see Append.
func (c *Client) AppendWeighted(src, dst, weight []uint64) error {
	if len(weight) != len(src) {
		return fmt.Errorf("hhgbclient: src/weight lengths %d/%d differ", len(src), len(weight))
	}
	return c.append(src, dst, weight, 0, false)
}

// AppendAt buffers a batch of (src, dst) observations with weight 1 each,
// all stamped with the event time ts, for a windowed server. Entries
// whose timestamps share a server window accumulate into one frame; a
// timestamp crossing a window boundary ships the buffer first, so every
// frame lands in exactly one window. Appends behind the server's seal
// frontier surface ErrRejected (sticky, like any dropped batch).
func (c *Client) AppendAt(ts time.Time, src, dst []uint64) error {
	return c.append(src, dst, nil, ts.UnixNano(), true)
}

// AppendWeightedAt buffers a batch of weighted observations at event time
// ts; see AppendAt.
func (c *Client) AppendWeightedAt(ts time.Time, src, dst, weight []uint64) error {
	if len(weight) != len(src) {
		return fmt.Errorf("hhgbclient: src/weight lengths %d/%d differ", len(src), len(weight))
	}
	return c.append(src, dst, weight, ts.UnixNano(), true)
}

func (c *Client) append(src, dst, weight []uint64, ts int64, timed bool) error {
	if len(src) != len(dst) {
		return fmt.Errorf("hhgbclient: src/dst lengths %d/%d differ", len(src), len(dst))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.readyLocked(); err != nil {
		return err
	}
	if timed != (c.welcome.Window != 0) {
		if timed {
			return fmt.Errorf("hhgbclient: server is not windowed; use Append")
		}
		return fmt.Errorf("hhgbclient: server is windowed; use AppendAt")
	}
	if timed {
		if ts < 0 {
			return fmt.Errorf("hhgbclient: negative timestamp %d", ts)
		}
		bucket := ts - ts%int64(c.welcome.Window)
		if len(c.src) > 0 && bucket != c.bufTS {
			// The batch starts a new window: everything buffered belongs
			// to the previous one and must ride its own frame.
			for len(c.src) > 0 {
				if err := c.shipBufferLocked(); err != nil {
					return err
				}
			}
		}
		c.bufTS = bucket
		c.bufTimed = true
	}
	c.src = append(c.src, src...)
	c.dst = append(c.dst, dst...)
	if weight == nil {
		for range src {
			c.wgt = append(c.wgt, 1)
		}
	} else {
		c.wgt = append(c.wgt, weight...)
	}
	// The buffering above is the transactional boundary: an error before
	// it means this call consumed nothing (safe to retry verbatim), while
	// from here on the session owns the entries, so ship failures are
	// filtered through bufferedShipErr.
	for len(c.src) >= c.opt.flushEntries {
		if err := c.shipBufferLocked(); err != nil {
			return c.bufferedShipErr(err)
		}
	}
	return c.bufferedShipErr(c.flushWireLocked())
}

// bufferedShipErr filters a ship failure that struck after the calling
// append had already buffered its entries. A dying session is not a loss
// at that point — every shipped frame sits in the retransmit ring and
// the remainder stays in the local buffer, both replayed on the next
// connection — and reporting it as the append's error would tempt the
// caller into re-sending entries the session still owns, double-counting
// them under fresh seqs that dedup cannot catch. The failure stays
// sticky and surfaces on the next call's readyLocked instead. Close is
// different: the caller tore the session down and must see that.
func (c *Client) bufferedShipErr(err error) error {
	if err == nil || errors.Is(err, ErrClosed) {
		return err
	}
	return nil
}

// shipBufferLocked sends up to one threshold-sized insert frame from the
// local buffer, waiting for the pipelining window. Callers hold mu.
func (c *Client) shipBufferLocked() error {
	if len(c.src) == 0 {
		return nil
	}
	for c.unacked >= c.opt.maxPending && c.err == nil && !c.dead && !c.closed {
		c.cond.Wait()
	}
	if c.closed {
		return ErrClosed
	}
	if c.err != nil {
		return c.err
	}
	if c.dead {
		return ErrDisconnected
	}
	// Size the frame only AFTER the window wait: mu was released inside
	// cond.Wait, so a concurrent shipper (the interval flusher, another
	// Append) may have drained the buffer — a stale count would re-slice
	// past len and re-send already-shipped entries.
	n := len(c.src)
	if n == 0 {
		return nil
	}
	if n > c.opt.flushEntries {
		n = c.opt.flushEntries
	}
	c.seq++
	seq := c.seq
	kind := proto.KindInsert
	var body []byte
	var err error
	if c.bufTimed {
		kind = proto.KindInsertAt
		body, err = proto.AppendInsertAt(nil, seq, uint64(c.bufTS), c.src[:n], c.dst[:n], c.wgt[:n])
	} else {
		body, err = proto.AppendInsert(nil, seq, c.src[:n], c.dst[:n], c.wgt[:n])
	}
	if err != nil {
		return err
	}
	// Into the retransmit ring BEFORE the write: if the write tears the
	// connection, the frame's fate is simply "unacked" and the next
	// connection retransmits it — a dead socket loses nothing.
	c.sent[seq] = sentFrame{kind: kind, body: body}
	c.src = c.src[:copy(c.src, c.src[n:])]
	c.dst = c.dst[:copy(c.dst, c.dst[n:])]
	c.wgt = c.wgt[:copy(c.wgt, c.wgt[n:])]
	if err := c.w.WriteFrame(kind, body); err != nil {
		c.failLocked(fmt.Errorf("%w: %v", ErrDisconnected, err))
		return nil
	}
	pc := &call{kind: kind}
	if c.opt.ackLatency != nil {
		pc.sentAt = time.Now()
	}
	c.pending[seq] = pc
	c.unacked++
	c.autoFlushLocked()
	return nil
}

// autoFlushLocked pipelines an automatic Flush barrier when the
// retransmit ring has reached the WithMaxRing bound on a durable server
// (elsewhere the ring retires on insert acks and needs no barrier). The
// barrier is a pending call with no waiter — its ack trims the ring in
// dispatch and nothing blocks on it. A write failure takes the usual
// connection-death path; the ring itself is untouched either way. Callers
// hold mu.
func (c *Client) autoFlushLocked() {
	if !c.welcome.Durable || c.autoFlush || len(c.sent) < c.opt.maxRing {
		return
	}
	c.seq++
	seq := c.seq
	if err := c.w.WriteFrame(proto.KindFlush, proto.AppendSeq(nil, seq)); err != nil {
		c.failLocked(fmt.Errorf("%w: %v", ErrDisconnected, err))
		return
	}
	c.pending[seq] = &call{kind: proto.KindFlush}
	c.autoFlush = true
}

// flushWireLocked pushes buffered frames to the socket. Callers hold mu.
func (c *Client) flushWireLocked() error {
	if err := c.w.Flush(); err != nil {
		c.failLocked(fmt.Errorf("%w: %v", ErrDisconnected, err))
		return c.err
	}
	return nil
}

// roundTrip ships the local buffer, sends one request frame, and waits
// for its response.
func (c *Client) roundTrip(kind byte, build func(seq uint64) []byte) (response, error) {
	c.mu.Lock()
	if err := c.readyLocked(); err != nil {
		c.mu.Unlock()
		return response{}, err
	}
	for len(c.src) > 0 {
		if err := c.shipBufferLocked(); err != nil {
			c.mu.Unlock()
			return response{}, err
		}
	}
	c.seq++
	seq := c.seq
	call := &call{kind: kind, done: make(chan response, 1)}
	if err := c.w.WriteFrame(kind, build(seq)); err != nil {
		c.failLocked(fmt.Errorf("%w: %v", ErrDisconnected, err))
		err := c.err
		c.mu.Unlock()
		return response{}, err
	}
	c.pending[seq] = call
	if err := c.flushWireLocked(); err != nil {
		c.mu.Unlock()
		return response{}, err
	}
	c.mu.Unlock()
	resp := <-call.done
	return resp, resp.err
}

// Flush ships the local buffer and waits for the server's flush ack: on
// return every batch appended before the call is applied to the matrix
// and, on a durable server, fsynced. It then reports any sticky error —
// so a nil Flush additionally certifies that no earlier pipelined batch
// was dropped.
func (c *Client) Flush() error {
	if _, err := c.roundTrip(proto.KindFlush, func(seq uint64) []byte {
		return proto.AppendSeq(nil, seq)
	}); err != nil {
		return err
	}
	return c.Err()
}

// Checkpoint is Flush plus server-side log compaction (snapshot +
// truncate); it fails with ErrRejected on a non-durable server.
func (c *Client) Checkpoint() error {
	if _, err := c.roundTrip(proto.KindCheckpoint, func(seq uint64) []byte {
		return proto.AppendSeq(nil, seq)
	}); err != nil {
		return err
	}
	return c.Err()
}

// Lookup returns the accumulated weight for one (src, dst) pair. Like
// every query it first ships the local buffer, so entries this client
// appended are visible to it.
func (c *Client) Lookup(src, dst uint64) (uint64, bool, error) {
	resp, err := c.roundTrip(proto.KindLookup, func(seq uint64) []byte {
		return proto.AppendLookup(nil, seq, src, dst)
	})
	if err != nil {
		return 0, false, err
	}
	return resp.value, resp.found, nil
}

// TopSources returns the server's k sources with the most total traffic.
func (c *Client) TopSources(k int) ([]hhgb.Ranked, error) {
	resp, err := c.roundTrip(proto.KindTopK, func(seq uint64) []byte {
		return proto.AppendTopK(nil, seq, proto.AxisSources, uint64(k))
	})
	if err != nil {
		return nil, err
	}
	return resp.top, nil
}

// TopDestinations returns the k destinations with the most total traffic.
func (c *Client) TopDestinations(k int) ([]hhgb.Ranked, error) {
	resp, err := c.roundTrip(proto.KindTopK, func(seq uint64) []byte {
		return proto.AppendTopK(nil, seq, proto.AxisDestinations, uint64(k))
	})
	if err != nil {
		return nil, err
	}
	return resp.top, nil
}

// Summary returns the server matrix's aggregate statistics (on a windowed
// server: over everything retained).
func (c *Client) Summary() (hhgb.Summary, error) {
	resp, err := c.roundTrip(proto.KindSummary, func(seq uint64) []byte {
		return proto.AppendSeq(nil, seq)
	})
	if err != nil {
		return hhgb.Summary{}, err
	}
	return resp.summary, nil
}

// tsRange validates and converts a client-side event-time range. UnixNano
// overflow (times outside 1678–2262) wraps negative, so the sign and
// order checks also reject out-of-range inputs.
func tsRange(t0, t1 time.Time) (uint64, uint64, error) {
	a, b := t0.UnixNano(), t1.UnixNano()
	if a < 0 || b <= a {
		return 0, 0, fmt.Errorf("hhgbclient: bad event-time range [%v, %v)", t0, t1)
	}
	return uint64(a), uint64(b), nil
}

// RangeSummary returns the aggregate statistics of the traffic in
// [t0, t1) on a windowed server: only the windows covering the range are
// touched.
func (c *Client) RangeSummary(t0, t1 time.Time) (hhgb.Summary, error) {
	a, b, err := tsRange(t0, t1)
	if err != nil {
		return hhgb.Summary{}, err
	}
	resp, err := c.roundTrip(proto.KindRangeSummary, func(seq uint64) []byte {
		return proto.AppendRangeSummary(nil, seq, a, b)
	})
	if err != nil {
		return hhgb.Summary{}, err
	}
	return resp.summary, nil
}

// RangeTopSources returns the k sources with the most traffic in [t0, t1).
func (c *Client) RangeTopSources(k int, t0, t1 time.Time) ([]hhgb.Ranked, error) {
	return c.rangeTopK(proto.AxisSources, k, t0, t1)
}

// RangeTopDestinations returns the k destinations with the most traffic
// in [t0, t1).
func (c *Client) RangeTopDestinations(k int, t0, t1 time.Time) ([]hhgb.Ranked, error) {
	return c.rangeTopK(proto.AxisDestinations, k, t0, t1)
}

func (c *Client) rangeTopK(axis byte, k int, t0, t1 time.Time) ([]hhgb.Ranked, error) {
	a, b, err := tsRange(t0, t1)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(proto.KindRangeTopK, func(seq uint64) []byte {
		return proto.AppendRangeTopK(nil, seq, axis, uint64(k), a, b)
	})
	if err != nil {
		return nil, err
	}
	return resp.top, nil
}

// RangeLookup returns the accumulated weight for one (src, dst) pair over
// [t0, t1).
func (c *Client) RangeLookup(src, dst uint64, t0, t1 time.Time) (uint64, bool, error) {
	a, b, err := tsRange(t0, t1)
	if err != nil {
		return 0, false, err
	}
	resp, err := c.roundTrip(proto.KindRangeLookup, func(seq uint64) []byte {
		return proto.AppendRangeLookup(nil, seq, src, dst, a, b)
	})
	if err != nil {
		return 0, false, err
	}
	return resp.value, resp.found, nil
}

// ExplainLeg is one window the server's query plan fanned out to: its
// hierarchy level and event-time span, how many per-shard tasks the leg
// issued, and how long it ran. On a flat (non-windowed) server a query
// runs as a single leg with a zero span.
type ExplainLeg struct {
	Level    int
	Span     hhgb.TimeSpan
	Shards   int
	Duration time.Duration
}

// Explain is the server's query plan and timing trailer for one read,
// produced by the Explain* methods: the op that ran, the exact window
// cover it was served from (the same cover a plain query over the same
// range uses — bit for bit), the slices of the range no retained window
// could serve, end-to-end execution time, and the shard pushdown-cache
// traffic observed around the query. The cache counters are server-global
// and therefore best-effort under concurrent load.
type Explain struct {
	// Op labels the wrapped query: "lookup", "topk", "summary", or their
	// "range_" forms.
	Op string
	// Total is the server-side execution time: plan resolution through the
	// last merged leg, excluding decode/queue/encode.
	Total time.Duration
	// Legs is the served cover in time order.
	Legs []ExplainLeg
	// Uncovered lists the slices of the range no retained window could
	// tile: data expired at the requested resolution, or never ingested.
	Uncovered []hhgb.TimeSpan
	// CacheHits and CacheMisses count shard pushdown-cache traffic during
	// the query (best-effort: concurrent queries share the counters).
	CacheHits   uint64
	CacheMisses uint64
}

// explainOpLabel names a wrapped query kind for Explain.Op.
func explainOpLabel(op byte) string {
	switch op {
	case proto.KindLookup:
		return "lookup"
	case proto.KindTopK:
		return "topk"
	case proto.KindSummary:
		return "summary"
	case proto.KindRangeLookup:
		return "range_lookup"
	case proto.KindRangeTopK:
		return "range_topk"
	case proto.KindRangeSummary:
		return "range_summary"
	default:
		return fmt.Sprintf("op_%#x", op)
	}
}

// explainFromWire converts the wire trailer to the public form.
func explainFromWire(e proto.Explain) Explain {
	out := Explain{
		Op:          explainOpLabel(e.Op),
		Total:       time.Duration(e.TotalNanos),
		CacheHits:   e.CacheHits,
		CacheMisses: e.CacheMisses,
	}
	if len(e.Legs) > 0 {
		out.Legs = make([]ExplainLeg, len(e.Legs))
		for i, l := range e.Legs {
			out.Legs[i] = ExplainLeg{
				Level:    int(l.Level),
				Span:     hhgb.TimeSpan{Start: time.Unix(0, int64(l.Start)), End: time.Unix(0, int64(l.End))},
				Shards:   int(l.Shards),
				Duration: time.Duration(l.DurNanos),
			}
		}
	}
	if len(e.Uncovered) > 0 {
		out.Uncovered = make([]hhgb.TimeSpan, len(e.Uncovered))
		for i, s := range e.Uncovered {
			out.Uncovered[i] = hhgb.TimeSpan{Start: time.Unix(0, int64(s.Start)), End: time.Unix(0, int64(s.End))}
		}
	}
	return out
}

// explain runs one wrapped query op on the server in EXPLAIN mode: the
// server executes the op (discarding its result) and replies with the
// plan-and-timing trailer instead.
func (c *Client) explain(q proto.ExplainReq) (Explain, error) {
	// Validate the request up front so the build closure below cannot fail
	// (roundTrip's builder has no error path).
	if _, err := proto.AppendExplain(nil, q); err != nil {
		return Explain{}, err
	}
	resp, err := c.roundTrip(proto.KindExplain, func(seq uint64) []byte {
		q.Seq = seq
		body, _ := proto.AppendExplain(nil, q)
		return body
	})
	if err != nil {
		return Explain{}, err
	}
	return resp.explain, nil
}

// ExplainLookup explains a Lookup(src, dst): the plan and timings the
// server would use to serve it, without returning the value.
func (c *Client) ExplainLookup(src, dst uint64) (Explain, error) {
	return c.explain(proto.ExplainReq{Op: proto.KindLookup, Src: src, Dst: dst})
}

// ExplainTopSources explains a TopSources(k).
func (c *Client) ExplainTopSources(k int) (Explain, error) {
	return c.explain(proto.ExplainReq{Op: proto.KindTopK, Axis: proto.AxisSources, K: uint64(k)})
}

// ExplainTopDestinations explains a TopDestinations(k).
func (c *Client) ExplainTopDestinations(k int) (Explain, error) {
	return c.explain(proto.ExplainReq{Op: proto.KindTopK, Axis: proto.AxisDestinations, K: uint64(k)})
}

// ExplainSummary explains a Summary().
func (c *Client) ExplainSummary() (Explain, error) {
	return c.explain(proto.ExplainReq{Op: proto.KindSummary})
}

// ExplainRangeLookup explains a RangeLookup(src, dst, t0, t1): which
// windows the cover picks, what part of the range is uncovered, and how
// long each leg ran.
func (c *Client) ExplainRangeLookup(src, dst uint64, t0, t1 time.Time) (Explain, error) {
	a, b, err := tsRange(t0, t1)
	if err != nil {
		return Explain{}, err
	}
	return c.explain(proto.ExplainReq{Op: proto.KindRangeLookup, Src: src, Dst: dst, T0: a, T1: b})
}

// ExplainRangeTopSources explains a RangeTopSources(k, t0, t1).
func (c *Client) ExplainRangeTopSources(k int, t0, t1 time.Time) (Explain, error) {
	return c.explainRangeTopK(proto.AxisSources, k, t0, t1)
}

// ExplainRangeTopDestinations explains a RangeTopDestinations(k, t0, t1).
func (c *Client) ExplainRangeTopDestinations(k int, t0, t1 time.Time) (Explain, error) {
	return c.explainRangeTopK(proto.AxisDestinations, k, t0, t1)
}

func (c *Client) explainRangeTopK(axis byte, k int, t0, t1 time.Time) (Explain, error) {
	a, b, err := tsRange(t0, t1)
	if err != nil {
		return Explain{}, err
	}
	return c.explain(proto.ExplainReq{Op: proto.KindRangeTopK, Axis: axis, K: uint64(k), T0: a, T1: b})
}

// ExplainRangeSummary explains a RangeSummary(t0, t1).
func (c *Client) ExplainRangeSummary(t0, t1 time.Time) (Explain, error) {
	a, b, err := tsRange(t0, t1)
	if err != nil {
		return Explain{}, err
	}
	return c.explain(proto.ExplainReq{Op: proto.KindRangeSummary, T0: a, T1: b})
}

// SubscribeAllLevels selects every hierarchy level in Subscribe.
const SubscribeAllLevels = -1

// clientSub delivers one subscription's summaries to its callback from a
// dedicated goroutine, preserving seal order without ever blocking the
// receive loop.
type clientSub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []hhgb.WindowSummary
	closed bool
}

func newClientSub(fn func(hhgb.WindowSummary)) *clientSub {
	s := &clientSub{}
	s.cond = sync.NewCond(&s.mu)
	go func() {
		for {
			s.mu.Lock()
			for len(s.queue) == 0 && !s.closed {
				s.cond.Wait()
			}
			if len(s.queue) == 0 {
				s.mu.Unlock()
				return
			}
			ws := s.queue[0]
			s.queue = s.queue[1:]
			s.mu.Unlock()
			fn(ws)
		}
	}()
	return s
}

func (s *clientSub) push(ws hhgb.WindowSummary) {
	s.mu.Lock()
	if !s.closed {
		s.queue = append(s.queue, ws)
		s.cond.Signal()
	}
	s.mu.Unlock()
}

func (s *clientSub) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Subscribe asks a windowed server to push a summary for every window it
// seals at the given level (SubscribeAllLevels = every level). fn runs on
// a dedicated goroutine, one call per sealed window, in seal order; it
// must not call back into the client's Close. The returned cancel stops
// the callbacks (after any already-queued summaries drain; the server
// keeps pushing until the connection closes — frames for a cancelled
// subscription are discarded). Subscriptions do not survive reconnects:
// a new connection starts with none, so re-Subscribe after Reconnect.
func (c *Client) Subscribe(level int, fn func(hhgb.WindowSummary)) (cancel func(), err error) {
	if fn == nil {
		return nil, fmt.Errorf("hhgbclient: Subscribe needs a callback")
	}
	if level < SubscribeAllLevels || level >= int(proto.SubscribeAllLevels) {
		return nil, fmt.Errorf("hhgbclient: bad subscription level %d", level)
	}
	lv := proto.SubscribeAllLevels
	if level >= 0 {
		lv = byte(level)
	}
	c.mu.Lock()
	if err := c.readyLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if c.welcome.Window == 0 {
		c.mu.Unlock()
		return nil, fmt.Errorf("hhgbclient: server is not windowed")
	}
	// Register the handler BEFORE the frame ships: the server's first
	// summary may arrive right behind the ack, and the receive loop must
	// already know where to route it.
	c.seq++
	seq := c.seq
	sub := newClientSub(fn)
	c.subs[seq] = sub
	call := &call{kind: proto.KindSubscribe, done: make(chan response, 1)}
	if err := c.w.WriteFrame(proto.KindSubscribe, proto.AppendSubscribe(nil, seq, lv)); err != nil {
		c.failLocked(fmt.Errorf("%w: %v", ErrDisconnected, err))
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[seq] = call
	if err := c.flushWireLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.mu.Unlock()
	resp := <-call.done
	if resp.err != nil {
		c.mu.Lock()
		delete(c.subs, seq)
		c.mu.Unlock()
		sub.close()
		return nil, resp.err
	}
	return func() {
		c.mu.Lock()
		delete(c.subs, seq)
		c.mu.Unlock()
		sub.close()
	}, nil
}

// Close ships the local buffer, exchanges Goodbye (so the server drains
// this connection's entries), and tears the client down. A dead
// connection closes locally without the exchange. Close is idempotent;
// it returns the sticky error, if any.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed || c.closing {
		// Idempotent, and safe concurrently: exactly one caller runs the
		// goodbye + teardown below.
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.closing = true
	c.mu.Unlock()

	var goodbyeErr error
	if c.Err() == nil {
		_, goodbyeErr = c.roundTrip(proto.KindGoodbye, func(seq uint64) []byte {
			return proto.AppendSeq(nil, seq)
		})
	}

	c.mu.Lock()
	c.closed = true
	if c.tick != nil {
		c.tick.Stop()
	}
	close(c.stop)
	if c.nc != nil {
		c.nc.Close()
	}
	c.dead = true
	for seq, sub := range c.subs {
		delete(c.subs, seq)
		sub.close()
	}
	c.cond.Broadcast()
	err := c.err
	c.mu.Unlock()
	if err != nil {
		return err
	}
	if goodbyeErr != nil && !errors.Is(goodbyeErr, ErrDisconnected) {
		return goodbyeErr
	}
	return nil
}
