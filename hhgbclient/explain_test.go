package hhgbclient_test

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"hhgb"
	"hhgb/hhgbclient"
	"hhgb/internal/server"
)

// startWindowedForExplain runs an in-process windowed server and hands
// back the store so tests can resolve the same cover the server serves.
func startWindowedForExplain(t *testing.T) (*hhgb.Windowed, string) {
	t.Helper()
	wm, err := hhgb.NewWindowed(1<<20, time.Second, hhgb.WithShards(2), hhgb.WithLateness(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wm.Close() })
	s, err := server.New(server.Config{Windowed: wm})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return wm, ln.Addr().String()
}

// TestClientExplainWindowed drives the public Explain* surface against a
// windowed server with a deliberate hole: traffic lands in windows 0, 1,
// and 3, so a range over [0, 4s) must explain three cover legs and
// report the missing second window as uncovered — bit-for-bit the spans
// the equivalent RangeView resolves.
func TestClientExplainWindowed(t *testing.T) {
	wm, addr := startWindowedForExplain(t)
	c, err := hhgbclient.Dial(addr, hhgbclient.WithFlushInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, win := range []int{0, 1, 3} {
		ts := winBase.Add(time.Duration(win) * time.Second)
		if err := c.AppendAt(ts, []uint64{uint64(win + 1)}, []uint64{9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	t0 := winBase
	t1 := winBase.Add(4 * time.Second)
	ex, err := c.ExplainRangeSummary(t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Op != "range_summary" {
		t.Fatalf("explain op %q, want range_summary", ex.Op)
	}
	if ex.Total <= 0 {
		t.Fatalf("explain total = %v, want > 0", ex.Total)
	}

	view, err := wm.QueryRange(t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	spans := view.Spans()
	if len(ex.Legs) != len(spans) {
		t.Fatalf("explain has %d legs, served cover has %d windows", len(ex.Legs), len(spans))
	}
	for i, leg := range ex.Legs {
		if !leg.Span.Start.Equal(spans[i].Start) || !leg.Span.End.Equal(spans[i].End) {
			t.Errorf("leg %d span %v–%v, served span %v–%v",
				i, leg.Span.Start, leg.Span.End, spans[i].Start, spans[i].End)
		}
		if leg.Level != 0 {
			t.Errorf("leg %d level %d, want 0", i, leg.Level)
		}
		if leg.Shards != 2 {
			t.Errorf("leg %d shards %d, want 2 (barrier on a 2-shard group)", i, leg.Shards)
		}
	}
	holes := view.Uncovered()
	if len(ex.Uncovered) != len(holes) {
		t.Fatalf("explain reports %d holes, served view has %d", len(ex.Uncovered), len(holes))
	}
	for i, u := range ex.Uncovered {
		if !u.Start.Equal(holes[i].Start) || !u.End.Equal(holes[i].End) {
			t.Errorf("hole %d = %v–%v, served hole %v–%v", i, u.Start, u.End, holes[i].Start, holes[i].End)
		}
	}
	wantHole := hhgb.TimeSpan{Start: winBase.Add(2 * time.Second), End: winBase.Add(3 * time.Second)}
	found := false
	for _, u := range ex.Uncovered {
		if u.Start.Equal(wantHole.Start) && u.End.Equal(wantHole.End) {
			found = true
		}
	}
	if !found {
		t.Errorf("uncovered %v does not include the skipped window %v", ex.Uncovered, wantHole)
	}

	// The other windowed forms answer too, over the all-time cover.
	for _, probe := range []struct {
		name string
		call func() (hhgbclient.Explain, error)
		op   string
	}{
		{"lookup", func() (hhgbclient.Explain, error) { return c.ExplainLookup(1, 9) }, "lookup"},
		{"topk", func() (hhgbclient.Explain, error) { return c.ExplainTopSources(3) }, "topk"},
		{"range_topk", func() (hhgbclient.Explain, error) { return c.ExplainRangeTopSources(3, t0, t1) }, "range_topk"},
	} {
		got, err := probe.call()
		if err != nil {
			t.Fatalf("%s: %v", probe.name, err)
		}
		if got.Op != probe.op || len(got.Legs) == 0 {
			t.Fatalf("%s explain = op %q with %d legs", probe.name, got.Op, len(got.Legs))
		}
	}

	// Range validation happens client-side, before any frame ships.
	if _, err := c.ExplainRangeSummary(t1, t0); err == nil {
		t.Fatal("backwards explain range accepted")
	}
}

// TestClientExplainFlat: a flat server explains every non-range op as a
// single leg with no window bounds, and refuses range ops outright.
func TestClientExplainFlat(t *testing.T) {
	_, _, addr := startServer(t, 1<<20, server.Config{})
	c, err := hhgbclient.Dial(addr, hhgbclient.WithFlushInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Append([]uint64{3}, []uint64{4}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	ex, err := c.ExplainLookup(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Op != "lookup" || len(ex.Legs) != 1 {
		t.Fatalf("flat lookup explain = %+v", ex)
	}
	leg := ex.Legs[0]
	if leg.Shards != 1 {
		t.Errorf("flat lookup touched %d shards, want 1 (routed)", leg.Shards)
	}
	if leg.Span.Start.UnixNano() != 0 || leg.Span.End.UnixNano() != 0 {
		t.Errorf("flat leg carries window bounds %v–%v, want none", leg.Span.Start, leg.Span.End)
	}
	if ex.Uncovered != nil {
		t.Errorf("flat explain reports holes: %v", ex.Uncovered)
	}

	sum, err := c.ExplainSummary()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Legs) != 1 || sum.Legs[0].Shards != 2 {
		t.Fatalf("flat summary explain = %+v, want one 2-shard barrier leg", sum)
	}

	if _, err := c.ExplainRangeSummary(winBase, winBase.Add(time.Second)); err == nil {
		t.Fatal("flat server accepted a range explain")
	}
}

// spawnServeStats starts hhgb-serve with a stats listener and returns
// both the dial address and the stats base URL, parsed from stdout.
func spawnServeStats(t *testing.T, bin string, args ...string) (addr, statsURL string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-stats", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if a, ok := strings.CutPrefix(line, "listening on "); ok {
			addr = a
		}
		if s, ok := strings.CutPrefix(line, "stats on "); ok {
			statsURL = strings.TrimSuffix(s, "/stats")
		}
		if addr != "" && statsURL != "" {
			go func() { // keep draining so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			return addr, statsURL
		}
	}
	t.Fatalf("server never reported both addresses (scan err %v)", sc.Err())
	return "", ""
}

// flightDump mirrors the /debug/events payload.
type flightDump struct {
	Recorded uint64 `json:"recorded_total"`
	Events   []struct {
		Seq      uint64 `json:"seq"`
		Kind     string `json:"kind"`
		Session  string `json:"session,omitempty"`
		FrameSeq uint64 `json:"frame_seq,omitempty"`
		A        uint64 `json:"a,omitempty"`
		Dur      int64  `json:"dur_ns"`
	} `json:"events"`
}

func getDump(t *testing.T, url string) flightDump {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var d flightDump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatalf("GET %s: dump does not parse: %v", url, err)
	}
	return d
}

// TestSlowQueryLogE2E is the acceptance-criterion test: against a real
// hhgb-serve process running with -slow-query, a slow range query must
// surface in /debug/events as a complete, causally ordered
// decode → fanout → merge → encode → ack chain capped by the slow_query
// marker, and the ?kind and ?limit filters must carve it out of the ring.
func TestSlowQueryLogE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e test in -short mode")
	}
	bin := buildServe(t)
	// -slow-query 1ns turns query spans on by itself and makes every
	// query "slow", so the test does not depend on wall-clock behavior.
	addr, statsURL := spawnServeStats(t, bin,
		"-scale", "20", "-shards", "2", "-window", "1s", "-lateness", "1h",
		"-slow-query", "1ns")

	c, err := hhgbclient.Dial(addr, hhgbclient.WithFlushInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for win := 0; win < 4; win++ {
		ts := winBase.Add(time.Duration(win) * time.Second)
		if err := c.AppendAt(ts, []uint64{uint64(win + 1), 7}, []uint64{9, uint64(win + 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := c.RangeSummary(winBase, winBase.Add(4*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalPackets != 8 {
		t.Fatalf("range summary total %d, want 8", sum.TotalPackets)
	}

	// The span finalizes just after the response ships; poll the ring
	// until the slow_query marker lands.
	var marker flightDump
	deadline := time.Now().Add(5 * time.Second)
	for {
		marker = getDump(t, statsURL+"/debug/events?kind=slow_query")
		if len(marker.Events) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no slow_query event reached /debug/events")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, e := range marker.Events {
		if e.Kind != "slow_query" {
			t.Fatalf("?kind=slow_query returned a %q event", e.Kind)
		}
	}
	slow := marker.Events[len(marker.Events)-1]
	if slow.A == 0 || int64(slow.A) != slow.Dur {
		t.Fatalf("slow_query marker total a=%d dur=%d", slow.A, slow.Dur)
	}

	// The marker's query must have its whole stage chain in the ring, in
	// causal (claim) order.
	full := getDump(t, statsURL+"/debug/events")
	var chain []string
	var lastClaim uint64
	for _, e := range full.Events {
		if e.FrameSeq != slow.FrameSeq || !strings.HasPrefix(e.Kind, "query_") {
			continue
		}
		if len(chain) > 0 && e.Seq != lastClaim+1 {
			t.Fatalf("slow query chain not consecutive: claim %d after %d", e.Seq, lastClaim)
		}
		lastClaim = e.Seq
		chain = append(chain, e.Kind)
	}
	want := []string{"query_decode", "query_plan", "query_fanout", "query_merge", "query_encode", "query_ack"}
	if len(chain) != len(want) {
		t.Fatalf("slow query chain = %v, want %v", chain, want)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("slow query chain = %v, want %v", chain, want)
		}
	}

	// ?limit pulls just the tail.
	if d := getDump(t, statsURL+"/debug/events?limit=3"); len(d.Events) > 3 {
		t.Fatalf("?limit=3 returned %d events", len(d.Events))
	} else if d.Recorded != full.Recorded && d.Recorded < full.Recorded {
		t.Fatalf("limited dump recorded_total %d < full %d", d.Recorded, full.Recorded)
	}
}
