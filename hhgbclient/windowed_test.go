package hhgbclient_test

import (
	"bufio"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hhgb"
	"hhgb/hhgbclient"
)

var winBase = time.Unix(1_700_000_000, 0)

// spawnServe starts a real hhgb-serve process with the given extra flags
// and returns its dial address. The process is killed at cleanup.
func spawnServe(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			go func() { // keep draining so the child never blocks on stdout
				for sc.Scan() {
				}
			}()
			return a
		}
	}
	t.Fatalf("server never reported its address (scan err %v)", sc.Err())
	return ""
}

// TestWindowedSubscribeE2E is the acceptance-criterion test: against a
// real hhgb-serve -window process fed by concurrent multi-connection
// ingest, a subscribing client receives exactly one summary per sealed
// window, in seal order, with the per-window aggregates intact.
func TestWindowedSubscribeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e test in -short mode")
	}
	bin := buildServe(t)
	// Lateness covers producer skew, so racing connections never trip
	// the seal frontier mid-stream; the sentinel appends at the end push
	// the watermark far enough to seal every data window deterministically.
	addr := spawnServe(t, bin, "-scale", "20", "-shards", "2", "-window", "1s", "-lateness", "30s")

	const (
		producers = 3
		nWindows  = 10
	)
	// Subscribe before any ingest, so no seal can be missed.
	subC, err := hhgbclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer subC.Close()
	if subC.Window() != time.Second {
		t.Fatalf("handshake window = %v, want 1s", subC.Window())
	}
	var (
		sumMu sync.Mutex
		sums  []hhgb.WindowSummary
	)
	cancel, err := subC.Subscribe(0, func(ws hhgb.WindowSummary) {
		sumMu.Lock()
		sums = append(sums, ws)
		sumMu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// A plain Append is refused client-side on a windowed session.
	if err := subC.Append([]uint64{1}, []uint64{2}); err == nil {
		t.Fatal("plain Append accepted on a windowed session")
	}

	// Producer p writes one weight-(p+1) observation of (100+p, w) into
	// every window w, concurrently.
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c, err := hhgbclient.Dial(addr, hhgbclient.WithFlushEntries(4))
			if err != nil {
				t.Errorf("producer %d: %v", p, err)
				return
			}
			defer c.Close()
			for w := 0; w < nWindows; w++ {
				ts := winBase.Add(time.Duration(w)*time.Second + time.Duration(p+1)*time.Millisecond)
				if err := c.AppendWeightedAt(ts, []uint64{uint64(100 + p)}, []uint64{uint64(w)}, []uint64{uint64(p + 1)}); err != nil {
					t.Errorf("producer %d window %d: %v", p, w, err)
					return
				}
			}
			if err := c.Flush(); err != nil {
				t.Errorf("producer %d flush: %v", p, err)
			}
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// With every producer drained, one sentinel pushes the watermark past
	// every data window's end + lateness, sealing all ten; its own window
	// stays active. Sent only now — mid-stream it would race slower
	// producers behind the advancing frontier.
	if err := subC.AppendAt(winBase.Add(45*time.Second), []uint64{999}, []uint64{999}); err != nil {
		t.Fatal(err)
	}
	if err := subC.Flush(); err != nil {
		t.Fatal(err)
	}

	// The summaries drain asynchronously; wait for all ten.
	deadline := time.Now().Add(10 * time.Second)
	for {
		sumMu.Lock()
		n := len(sums)
		sumMu.Unlock()
		if n >= nWindows {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d summaries before timeout, want %d", n, nWindows)
		}
		time.Sleep(10 * time.Millisecond)
	}
	sumMu.Lock()
	got := append([]hhgb.WindowSummary(nil), sums...)
	sumMu.Unlock()
	if len(got) != nWindows {
		t.Fatalf("received %d summaries, want exactly %d", len(got), nWindows)
	}
	for w, ws := range got {
		if want := winBase.Add(time.Duration(w) * time.Second); !ws.Start.Equal(want) {
			t.Fatalf("summary %d out of order: start %v, want %v", w, ws.Start, want)
		}
		if ws.Level != 0 || ws.Entries != producers || ws.Sources != producers || ws.Destinations != 1 {
			t.Fatalf("summary %d shape: %+v", w, ws)
		}
		if ws.Packets != 1+2+3 {
			t.Fatalf("summary %d packets = %d, want 6", w, ws.Packets)
		}
	}

	// Range queries through the client: windows 2..5 hold 4 windows x 6
	// packets.
	sum, err := subC.RangeSummary(winBase.Add(2*time.Second), winBase.Add(6*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if sum.TotalPackets != 24 || sum.Entries != 3*4 {
		t.Fatalf("range summary = %+v", sum)
	}
	top, err := subC.RangeTopSources(1, winBase.Add(2*time.Second), winBase.Add(6*time.Second))
	if err != nil || len(top) != 1 || top[0].ID != 102 || top[0].Value != 3*4 {
		t.Fatalf("range top sources = %v (%v)", top, err)
	}
	v, found, err := subC.RangeLookup(101, 3, winBase.Add(3*time.Second), winBase.Add(4*time.Second))
	if err != nil || !found || v != 2 {
		t.Fatalf("range lookup = %d/%v/%v, want 2", v, found, err)
	}
	// Cancelling stops the callbacks; later seals push no more summaries
	// into the collected slice.
	cancel()
}

// writeSelfSigned mints a loopback certificate and writes PEM cert/key
// files, returning their paths and a pool trusting the cert.
func writeSelfSigned(t *testing.T) (certFile, keyFile string, pool *x509.CertPool) {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "hhgb-e2e"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.ParseIP("127.0.0.1")},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	certFile = filepath.Join(dir, "cert.pem")
	keyFile = filepath.Join(dir, "key.pem")
	if err := os.WriteFile(certFile, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der}), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyFile, pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER}), 0o600); err != nil {
		t.Fatal(err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	pool = x509.NewCertPool()
	pool.AddCert(leaf)
	return certFile, keyFile, pool
}

// TestTLSEndToEnd is the TLS satellite's e2e: a real hhgb-serve with
// -tls-cert/-tls-key, a client dialing with WithTLS and a verified chain,
// the full ingest + query round trip over the encrypted transport — and a
// client without TLS failing to handshake.
func TestTLSEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e test in -short mode")
	}
	bin := buildServe(t)
	certFile, keyFile, pool := writeSelfSigned(t)
	addr := spawnServe(t, bin, "-scale", "20", "-shards", "2", "-tls-cert", certFile, "-tls-key", keyFile)

	c, err := hhgbclient.Dial(addr, hhgbclient.WithTLS(&tls.Config{RootCAs: pool, ServerName: "127.0.0.1"}))
	if err != nil {
		t.Fatalf("TLS dial: %v", err)
	}
	defer c.Close()
	if err := c.AppendWeighted([]uint64{5}, []uint64{6}, []uint64{7}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, found, err := c.Lookup(5, 6); err != nil || !found || v != 7 {
		t.Fatalf("Lookup over TLS = %d/%v/%v, want 7", v, found, err)
	}
	sum, err := c.Summary()
	if err != nil || sum.TotalPackets != 7 {
		t.Fatalf("Summary over TLS = %+v (%v)", sum, err)
	}

	// A plaintext client cannot handshake against the TLS listener.
	if pc, err := hhgbclient.Dial(addr, hhgbclient.WithDialTimeout(2*time.Second)); err == nil {
		pc.Close()
		t.Fatal("plaintext dial succeeded against a TLS server")
	}
}
