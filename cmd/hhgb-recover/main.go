// Command hhgb-recover measures the durability story of the sharded
// frontend end to end and is the source of the BENCH_durability.json
// trajectory artifact CI accumulates:
//
//  1. ingest rate of the plain in-memory sharded group (the baseline);
//  2. ingest rate with per-shard write-ahead logging at the configured
//     group-commit interval, and the overhead ratio vs. the baseline;
//  3. checkpoint latency (sync + per-shard snapshot + manifest commit);
//  4. crash recovery: the durable group is abandoned un-Closed after a
//     final Flush (exactly the state a kill -9 leaves, minus unsynced
//     tails), then RecoverGroup rebuilds it — timed, and verified to
//     answer the pushdown queries identically to the pre-crash group.
//
// Usage:
//
//	hhgb-recover [-edges N] [-batch N] [-scale S] [-shards N] [-sync N]
//	             [-levels N] [-base-cut N] [-ratio N] [-dir D]
//	             [-out BENCH_durability.json] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"time"

	"hhgb/internal/bench"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/powerlaw"
	"hhgb/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hhgb-recover: ")
	var (
		edges   = flag.Int("edges", 2_000_000, "total updates per measured phase")
		batch   = flag.Int("batch", 100_000, "updates per batch (the paper's set size)")
		scale   = flag.Int("scale", 24, "R-MAT scale (2^scale vertices)")
		shards  = flag.Int("shards", 0, "shard count (0 = all cores)")
		sync    = flag.Int("sync", shard.DefaultSyncEvery, "group-commit interval: fsync the WAL every N batches")
		levels  = flag.Int("levels", hier.DefaultLevels, "cascade levels per shard")
		baseCut = flag.Int("base-cut", hier.DefaultBaseCut, "cut c1 of the lowest level")
		ratio   = flag.Int("ratio", hier.DefaultCutRatio, "geometric cut ratio")
		dir     = flag.String("dir", "", "durability directory (default: a temp dir, removed on exit)")
		out     = flag.String("out", "BENCH_durability.json", "trajectory JSON output path (empty to skip)")
		seed    = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()
	if err := run(*edges, *batch, *scale, *shards, *sync, *levels, *baseCut, *ratio, *dir, *out, *seed); err != nil {
		log.Fatal(err)
	}
}

// pool is the pre-generated workload, so generation cost never pollutes a
// measured ingest loop.
type pool struct {
	rows [][]gb.Index
	cols [][]gb.Index
	vals [][]uint64
	n    int64
}

func generate(edges, batch, scale int, seed uint64) (*pool, error) {
	stream := powerlaw.StreamSpec{TotalEdges: edges, SetSize: batch, Scale: scale, Seed: seed}
	p := &pool{}
	for k := 0; k < stream.Sets(); k++ {
		set, err := stream.GenerateSet(k)
		if err != nil {
			return nil, err
		}
		r, c, v := powerlaw.ToTuples(set)
		p.rows = append(p.rows, r)
		p.cols = append(p.cols, c)
		p.vals = append(p.vals, v)
		p.n += int64(len(r))
	}
	return p, nil
}

// copyDir clones the flat durability directory into dst, reproducing the
// exact on-disk state a kill -9 of the owner would leave behind.
func copyDir(src, dst string) (string, error) {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return "", err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return "", err
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return "", err
		}
	}
	return dst, nil
}

// ingest streams the pool into g and drains it (Flush), so buffered or
// queued work is never credited.
func ingest(g *shard.Group[uint64], p *pool) error {
	for k := range p.rows {
		if err := g.Update(p.rows[k], p.cols[k], p.vals[k]); err != nil {
			return err
		}
	}
	return g.Flush()
}

func run(edges, batch, scale, shards, sync, levels, baseCut, ratio int, dir, out string, seed uint64) error {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	cuts := hier.GeometricCuts(levels, baseCut, ratio)
	dim := gb.Index(1) << uint(scale)
	if dir == "" {
		tmp, err := os.MkdirTemp("", "hhgb-recover-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	fmt.Printf("durability benchmark: 2^%d x 2^%d matrix, %d shards, cuts %v\n", scale, scale, shards, cuts)
	fmt.Printf("  workload: %d updates in batches of %d   group commit: every %d batches\n\n", edges, batch, sync)

	p, err := generate(edges, batch, scale, seed)
	if err != nil {
		return err
	}

	// 1. In-memory baseline.
	mem, err := shard.NewGroup[uint64](dim, dim, shard.Config{Shards: shards, Hier: hier.Config{Cuts: cuts}})
	if err != nil {
		return err
	}
	memRate, err := bench.Measure(p.n, func() error { return ingest(mem, p) })
	if err != nil {
		return err
	}
	if err := mem.Close(); err != nil {
		return err
	}
	fmt.Printf("in-memory ingest:  %s\n", memRate)

	// 2. Durable ingest: same workload, WAL on.
	durDir := dir + "/group"
	dur, err := shard.NewGroup[uint64](dim, dim, shard.Config{
		Shards: shards,
		Hier:   hier.Config{Cuts: cuts},
		Durable: shard.Durability{
			Dir:       durDir,
			SyncEvery: sync,
		},
	})
	if err != nil {
		return err
	}
	durRate, err := bench.Measure(p.n, func() error { return ingest(dur, p) })
	if err != nil {
		return err
	}
	overhead := memRate.PerSecond() / durRate.PerSecond()
	fmt.Printf("durable ingest:    %s   (%.2fx overhead vs in-memory)\n", durRate, overhead)

	// 3. Checkpoint latency.
	ckptStart := time.Now()
	if err := dur.Checkpoint(); err != nil {
		return err
	}
	ckpt := time.Since(ckptStart)
	fmt.Printf("checkpoint:        %v (sync + %d snapshots + manifest)\n", ckpt.Round(time.Microsecond), shards)

	// 4. Crash + recovery. A post-checkpoint tail forces WAL replay; the
	// pre-crash pushdown answers are the reference the recovered group
	// must reproduce.
	tailFrom := len(p.rows) / 2
	for k := tailFrom; k < len(p.rows); k++ {
		if err := dur.Update(p.rows[k], p.cols[k], p.vals[k]); err != nil {
			return err
		}
	}
	if err := dur.Flush(); err != nil { // group commit: the tail is durable
		return err
	}
	wantN, err := dur.NVals()
	if err != nil {
		return err
	}
	wantTotal, err := dur.Total()
	if err != nil {
		return err
	}
	wantTop, err := dur.TopRows(10)
	if err != nil {
		return err
	}
	// The crash: dur is abandoned — never Closed, so no final checkpoint
	// happens and recovery must replay the logged tail. The directory is
	// copied first (outside the timed region): a real crash would kill
	// the owning process, but here it is still alive in-process and the
	// single-owner lock rightly refuses to recover out from under it.
	crashDir, err := copyDir(durDir, dir+"/crash")
	if err != nil {
		return err
	}
	recStart := time.Now()
	rec, st, err := shard.RecoverGroup[uint64](shard.Config{Durable: shard.Durability{Dir: crashDir}})
	if err != nil {
		return err
	}
	recDur := time.Since(recStart)
	gotN, err := rec.NVals()
	if err != nil {
		return err
	}
	gotTotal, err := rec.Total()
	if err != nil {
		return err
	}
	gotTop, err := rec.TopRows(10)
	if err != nil {
		return err
	}
	if err := rec.Close(); err != nil {
		return err
	}
	if gotN != wantN || gotTotal != wantTotal {
		return fmt.Errorf("recovered state differs: nvals %d/%d total %d/%d", gotN, wantN, gotTotal, wantTotal)
	}
	for i := range wantTop {
		if gotTop[i] != wantTop[i] {
			return fmt.Errorf("recovered top-k[%d] = %+v, want %+v", i, gotTop[i], wantTop[i])
		}
	}
	fmt.Printf("recovery:          %v (snapshot decode + %d replayed batches / %d entries, %d torn tails)\n",
		recDur.Round(time.Microsecond), st.ReplayedBatches, st.ReplayedEntries, st.TornTails)
	fmt.Printf("  recovered state verified: nvals, total, and top-k identical to pre-crash group\n")

	if out != "" {
		traj := bench.NewTrajectory("durability", "updates/s")
		traj.Meta = map[string]string{
			"edges":  strconv.Itoa(edges),
			"batch":  strconv.Itoa(batch),
			"scale":  strconv.Itoa(scale),
			"shards": strconv.Itoa(shards),
			"sync":   strconv.Itoa(sync),
		}
		traj.AddPoint("in-memory", 0, memRate.PerSecond(), nil)
		// Latencies ride in Extra so every point's Value stays in the
		// trajectory's unit (updates/s).
		traj.AddPoint(fmt.Sprintf("durable sync=%d", sync), float64(sync), durRate.PerSecond(),
			map[string]float64{
				"overhead_x":       overhead,
				"checkpoint_s":     ckpt.Seconds(),
				"recover_s":        recDur.Seconds(),
				"replayed_batches": float64(st.ReplayedBatches),
				"replayed_entries": float64(st.ReplayedEntries),
			})
		if err := traj.WriteFile(out); err != nil {
			return err
		}
		fmt.Printf("\nwrote trajectory point: %s\n", out)
	}
	return nil
}
