// Command hhgb-hotpath measures the allocation discipline of the ingest
// hot path and enforces it as a hard gate: frame decode through appender
// partitioning to shard apply, driven by a seeded power-law workload. It
// runs two variants of the same pipeline in the same process and run —
//
//   - reference: the allocating decode (fresh batch slices per frame, the
//     pre-pooling shape of the path), and
//   - pooled: the production path (one reused decode batch per
//     connection, slab-backed appender buffers),
//
// so the comparison is self-calibrating: no stored baseline can drift.
// The run fails (exit 1) unless the pooled variant allocates strictly
// less per frame than the reference, ingests at no less than
// minSpeedRatio of its rate, and stays within the -budget allocs/frame
// ceiling. The BENCH_hotpath.json trajectory records both points with
// allocs/frame in Extra, and CI uploads it next to the other BENCH_*
// artifacts.
//
// Allocations are counted process-wide (runtime.MemStats.Mallocs), so the
// shard workers' apply-side behavior — cascade staging, merges, WAL
// framing if durable — is inside the measurement, exactly like the
// per-stage testing.AllocsPerRun budgets are not: this is the end-to-end
// complement to those unit gates.
//
// The -seed flag selects the same deterministic R-MAT stream family used
// by trafficgen and hhgb-shards, so a hot-path number is reproducible
// from its recorded meta alone.
//
// Usage:
//
//	hhgb-hotpath [-edges N] [-batch N] [-scale S] [-shards N] [-handoff N]
//	             [-seed N] [-benchtime Nx] [-budget N] [-out BENCH_hotpath.json]
package main

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hhgb"
	"hhgb/internal/bench"
	"hhgb/internal/powerlaw"
	"hhgb/internal/proto"
	"hhgb/internal/shard"
)

// minSpeedRatio is the pooled-vs-reference ingest-rate gate: pooled must
// reach at least this fraction of the reference rate measured in the same
// run. The pooled path is expected to be at least as fast; the margin
// only absorbs scheduler noise on loaded CI hosts.
const minSpeedRatio = 0.9

func main() {
	log.SetFlags(0)
	log.SetPrefix("hhgb-hotpath: ")
	var (
		edges     = flag.Int("edges", 2_000_000, "total entries per variant")
		batch     = flag.Int("batch", 4096, "entries per insert frame")
		scale     = flag.Int("scale", 20, "R-MAT scale (2^scale vertices)")
		shards    = flag.Int("shards", 4, "shard count")
		handoff   = flag.Int("handoff", shard.DefaultHandoff, "per-shard producer buffer size in entries")
		seed      = flag.Uint64("seed", 1, "R-MAT stream seed (shared family with trafficgen; 0 = draw and log one)")
		benchtime = flag.String("benchtime", "3x", "passes per variant, as Nx (best pass is reported)")
		budget    = flag.Float64("budget", 32, "pooled allocs/frame ceiling (hard gate)")
		out       = flag.String("out", "BENCH_hotpath.json", "trajectory JSON output path (empty to skip)")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = drawSeed()
		log.Printf("-seed 0: drew seed %d; replay this exact workload with -seed %d", *seed, *seed)
	}
	reps, err := parseBenchtime(*benchtime)
	if err != nil {
		log.Fatal(err)
	}
	if err := run(*edges, *batch, *scale, *shards, *handoff, *seed, reps, *budget, *out); err != nil {
		log.Fatal(err)
	}
}

// drawSeed returns a nonzero random seed for -seed 0 runs, logged by the
// caller so any drawn workload is replayable — the same convention as
// trafficgen's -seed 0.
func drawSeed() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		log.Fatalf("drawing a random seed: %v", err)
	}
	s := binary.LittleEndian.Uint64(b[:])
	if s == 0 {
		s = 1
	}
	return s
}

func parseBenchtime(s string) (int, error) {
	n, ok := strings.CutSuffix(s, "x")
	if !ok {
		return 0, fmt.Errorf("-benchtime %q: only the Nx form is supported", s)
	}
	reps, err := strconv.Atoi(n)
	if err != nil || reps < 1 {
		return 0, fmt.Errorf("-benchtime %q: bad repetition count", s)
	}
	return reps, nil
}

// sample is one variant's best measured pass.
type sample struct {
	insertsPerSec  float64
	allocsPerFrame float64
}

func run(edges, batch, scale, shards, handoff int, seed uint64, reps int, budget float64, out string) error {
	if batch < 1 || batch > proto.MaxBatch {
		return fmt.Errorf("-batch %d out of range [1, %d]", batch, proto.MaxBatch)
	}
	bodies, total, err := encodeWorkload(edges, batch, scale, seed)
	if err != nil {
		return err
	}
	log.Printf("workload: %d frames × %d entries, scale %d, seed %d", len(bodies), batch, scale, seed)

	variants := []struct {
		name   string
		ingest func([][]byte, *hhgb.Appender) error
	}{
		{"reference", ingestReference},
		{"pooled", ingestPooled},
	}
	results := make(map[string]sample, len(variants))
	for _, v := range variants {
		best := sample{}
		for pass := 0; pass < reps; pass++ {
			s, err := measure(uint64(1)<<uint(scale), shards, handoff, bodies, total, v.ingest)
			if err != nil {
				return fmt.Errorf("%s pass %d: %w", v.name, pass, err)
			}
			if pass == 0 || s.insertsPerSec > best.insertsPerSec {
				best.insertsPerSec = s.insertsPerSec
			}
			if pass == 0 || s.allocsPerFrame < best.allocsPerFrame {
				best.allocsPerFrame = s.allocsPerFrame
			}
		}
		results[v.name] = best
		log.Printf("%-9s %12.0f inserts/s  %8.1f allocs/frame", v.name, best.insertsPerSec, best.allocsPerFrame)
	}

	ref, pooled := results["reference"], results["pooled"]
	if out != "" {
		tr := bench.NewTrajectory("hotpath", "inserts/s")
		tr.Meta = map[string]string{
			"edges":   strconv.Itoa(edges),
			"batch":   strconv.Itoa(batch),
			"scale":   strconv.Itoa(scale),
			"shards":  strconv.Itoa(shards),
			"handoff": strconv.Itoa(handoff),
			"seed":    strconv.FormatUint(seed, 10),
			"budget":  strconv.FormatFloat(budget, 'f', -1, 64),
			"reps":    strconv.Itoa(reps),
		}
		tr.AddPoint("reference", 0, ref.insertsPerSec, map[string]float64{"allocs_per_frame": ref.allocsPerFrame})
		tr.AddPoint("pooled", 1, pooled.insertsPerSec, map[string]float64{"allocs_per_frame": pooled.allocsPerFrame})
		if err := tr.WriteFile(out); err != nil {
			return err
		}
		log.Printf("wrote %s", out)
	}

	// The gates: same-run comparison, then the absolute ceiling.
	if pooled.allocsPerFrame >= ref.allocsPerFrame {
		return fmt.Errorf("pooled path allocates %.1f/frame, reference %.1f/frame: pooling regressed",
			pooled.allocsPerFrame, ref.allocsPerFrame)
	}
	if pooled.insertsPerSec < minSpeedRatio*ref.insertsPerSec {
		return fmt.Errorf("pooled path at %.0f inserts/s is below %.0f%% of reference %.0f inserts/s",
			pooled.insertsPerSec, 100*minSpeedRatio, ref.insertsPerSec)
	}
	if pooled.allocsPerFrame > budget {
		return fmt.Errorf("pooled path allocates %.1f/frame, over the %.1f budget", pooled.allocsPerFrame, budget)
	}
	log.Printf("gates passed: pooled %.1f < reference %.1f allocs/frame, within budget %.1f",
		pooled.allocsPerFrame, ref.allocsPerFrame, budget)
	return nil
}

// encodeWorkload pre-encodes the seeded stream into insert frame bodies
// so frame construction is outside every measurement.
func encodeWorkload(edges, batch, scale int, seed uint64) ([][]byte, int, error) {
	g, err := powerlaw.NewRMAT(scale, seed)
	if err != nil {
		return nil, 0, err
	}
	var bodies [][]byte
	total := 0
	for seq := uint64(1); total < edges; seq++ {
		n := batch
		if rem := edges - total; n > rem {
			n = rem
		}
		rows, cols, vals := powerlaw.ToTuples(g.Edges(n))
		body, err := proto.AppendInsert(nil, seq, rows, cols, vals)
		if err != nil {
			return nil, 0, err
		}
		bodies = append(bodies, body)
		total += n
	}
	return bodies, total, nil
}

// measure runs one ingest pass over a fresh matrix and reports the rate
// (timed through the final flush barrier, so queued work is never
// credited) and the process-wide mallocs per frame.
func measure(dim uint64, shards, handoff int, bodies [][]byte, total int, ingest func([][]byte, *hhgb.Appender) error) (sample, error) {
	m, err := hhgb.NewSharded(dim, hhgb.WithShards(shards), hhgb.WithHandoff(handoff))
	if err != nil {
		return sample{}, err
	}
	defer m.Close()
	a, err := m.NewAppender()
	if err != nil {
		return sample{}, err
	}

	// Warm pools and per-shard cascades with a prefix of the workload, then
	// settle at a barrier so warm-up work cannot bleed into the counters.
	warm := bodies
	if len(warm) > 8 {
		warm = warm[:8]
	}
	if err := ingest(warm, a); err != nil {
		return sample{}, err
	}
	if err := m.Flush(); err != nil {
		return sample{}, err
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := ingest(bodies, a); err != nil {
		return sample{}, err
	}
	if err := a.Flush(); err != nil {
		return sample{}, err
	}
	if err := m.Flush(); err != nil {
		return sample{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err := a.Close(); err != nil {
		return sample{}, err
	}
	return sample{
		insertsPerSec:  float64(total) / elapsed.Seconds(),
		allocsPerFrame: float64(after.Mallocs-before.Mallocs) / float64(len(bodies)),
	}, nil
}

// ingestReference decodes every frame through the allocating parser —
// fresh batch slices per frame, the pre-pooling shape of the read path.
func ingestReference(bodies [][]byte, a *hhgb.Appender) error {
	for _, body := range bodies {
		_, rows, cols, vals, err := proto.ParseInsert(body)
		if err != nil {
			return err
		}
		if err := a.AppendWeighted(rows, cols, vals); err != nil {
			return err
		}
	}
	return nil
}

// ingestPooled decodes every frame into one reused batch — the shape the
// server runs per connection, minus the socket.
func ingestPooled(bodies [][]byte, a *hhgb.Appender) error {
	var b proto.Batch
	for _, body := range bodies {
		if _, err := proto.ParseInsertBatch(body, &b); err != nil {
			return err
		}
		if err := a.AppendWeighted(b.Rows, b.Cols, b.Vals); err != nil {
			return err
		}
	}
	return nil
}
