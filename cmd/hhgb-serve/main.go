// Command hhgb-serve runs the network ingest service: one hhgb.Sharded
// traffic matrix behind the binary wire protocol, fed by any number of
// hhgbclient connections (cmd/trafficgen -connect is a ready-made load
// generator).
//
// Usage:
//
//	hhgb-serve [-addr host:port] [-scale S] [-shards N]
//	           [-durable dir] [-sync-every N]
//	           [-stats host:port] [-max-inflight N] [-max-batch N] [-queue-depth N]
//
// With -durable, ingest is write-ahead-logged under dir and a client
// Flush is a group-commit point; if dir already holds a durable matrix
// (a previous run's state — clean shutdown or crash), it is recovered
// first, so restarting after kill -9 resumes from the durable prefix.
//
// The process prints one "listening on ADDR" line once it accepts
// connections (scripts parse it to learn a :0 port), serves operator
// stats as JSON at -stats (path /stats), and shuts down gracefully on
// SIGINT/SIGTERM: the listener stops, every connection drains and acks,
// and the matrix closes (final checkpoint when durable).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"hhgb"
	"hhgb/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hhgb-serve: ")
	var (
		addr        = flag.String("addr", "127.0.0.1:4739", "listen address (use :0 for an ephemeral port)")
		scale       = flag.Int("scale", 32, "matrix dimension is 2^scale")
		shards      = flag.Int("shards", 0, "shard count (0 = GOMAXPROCS)")
		durable     = flag.String("durable", "", "durability directory (empty = in-memory only)")
		syncEvery   = flag.Int("sync-every", 0, "group-commit interval in batches (0 = default; needs -durable)")
		statsAddr   = flag.String("stats", "", "serve JSON stats on this address at /stats (empty = off)")
		maxInflight = flag.Int64("max-inflight", 0, "aggregate in-flight entry budget (0 = default)")
		maxBatch    = flag.Int("max-batch", 0, "per-frame entry cap (0 = default)")
		queueDepth  = flag.Int("queue-depth", 0, "per-connection apply queue depth in frames (0 = default)")
	)
	flag.Parse()
	if err := run(*addr, *scale, *shards, *durable, *syncEvery, *statsAddr, *maxInflight, *maxBatch, *queueDepth); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, scale, shards int, durable string, syncEvery int, statsAddr string, maxInflight int64, maxBatch, queueDepth int) error {
	m, err := openMatrix(scale, shards, durable, syncEvery)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Matrix:      m,
		MaxBatch:    maxBatch,
		QueueDepth:  queueDepth,
		MaxInFlight: maxInflight,
		Logf:        log.Printf,
	})
	if err != nil {
		m.Close()
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		m.Close()
		return err
	}
	fmt.Printf("listening on %s\n", ln.Addr())

	if statsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/stats", srv.StatsHandler())
		sl, err := net.Listen("tcp", statsAddr)
		if err != nil {
			ln.Close()
			m.Close()
			return err
		}
		fmt.Printf("stats on http://%s/stats\n", sl.Addr())
		go http.Serve(sl, mux)
	}

	// Graceful shutdown: drain connections, then close the matrix (final
	// checkpoint when durable).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("%v: draining", s)
		srv.Close()
	}()

	if err := srv.Serve(ln); err != nil && !errors.Is(err, server.ErrServerClosed) {
		m.Close()
		return err
	}
	srv.Close() // idempotent; covers Serve ending on a listener error
	st := srv.Stats()
	log.Printf("drained: %d conns served, %d batches, %d entries, %d overloads",
		st.TotalConns, st.InsertBatches, st.InsertEntries, st.Overloads)
	return m.Close()
}

// openMatrix builds the service's matrix: in-memory, freshly durable, or
// recovered from a previous run's durable state.
func openMatrix(scale, shards int, durable string, syncEvery int) (*hhgb.Sharded, error) {
	dim := uint64(1) << uint(scale)
	var opts []hhgb.Option
	if shards > 0 {
		opts = append(opts, hhgb.WithShards(shards))
	}
	if durable == "" {
		if syncEvery != 0 {
			return nil, fmt.Errorf("-sync-every requires -durable")
		}
		return hhgb.NewSharded(dim, opts...)
	}
	if syncEvery > 0 {
		opts = append(opts, hhgb.WithSyncEvery(syncEvery))
	}
	if _, err := os.Stat(filepath.Join(durable, "MANIFEST.json")); err == nil {
		// Existing durable state: recover it (the manifest fixes the
		// dimension and shard count; -scale/-shards are ignored).
		var ropts []hhgb.Option
		if syncEvery > 0 {
			ropts = append(ropts, hhgb.WithSyncEvery(syncEvery))
		}
		m, err := hhgb.Recover(durable, ropts...)
		if err != nil {
			return nil, fmt.Errorf("recovering %s: %w", durable, err)
		}
		log.Printf("recovered durable matrix from %s (dim %d, %d shards)", durable, m.Dim(), m.Shards())
		return m, nil
	}
	return hhgb.NewSharded(dim, append(opts, hhgb.WithDurability(durable))...)
}
