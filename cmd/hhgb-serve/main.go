// Command hhgb-serve runs the network ingest service: one hhgb.Sharded
// traffic matrix — or, with -window, one hhgb.Windowed temporal store —
// behind the binary wire protocol, fed by any number of hhgbclient
// connections (cmd/trafficgen -connect is a ready-made load generator).
//
// Usage:
//
//	hhgb-serve [-addr host:port] [-scale S] [-shards N]
//	           [-window D] [-rollups 60,60] [-retentions 5m,0] [-lateness D]
//	           [-sub-queue N] [-sub-patience D]
//	           [-durable dir] [-sync-every N]
//	           [-tls-cert file -tls-key file]
//	           [-stats host:port] [-metrics]
//	           [-trace-sample N] [-slow-frame D] [-slow-query D]
//	           [-max-inflight N] [-max-batch N] [-queue-depth N]
//
// With -window, inserts must carry event timestamps (hhgbclient.AppendAt);
// the stream partitions into windows of that duration, rolled up by the
// -rollups factors, expired per level by -retentions, and every sealed
// window's summary streams to subscribed clients. With -durable, ingest
// is write-ahead-logged under dir and a client Flush is a group-commit
// point; if dir already holds durable state (a previous run's — clean
// shutdown or crash), it is recovered first, so restarting after kill -9
// resumes from the durable prefix. Client session dedup tables are
// journaled and checkpointed with the store, so a reconnecting
// hhgbclient resumes its exactly-once session across the restart: the
// handshake reports the session's durable frontier and retransmitted
// frames at or below it are acked without re-applying. With
// -tls-cert/-tls-key, every connection speaks TLS.
//
// The process prints one "listening on ADDR" line once it accepts
// connections (scripts parse it to learn a :0 port), serves operator
// stats as JSON at -stats (path /stats, schema versioned by
// server.StatsVersion), and shuts down gracefully on SIGINT/SIGTERM: the
// listener stops, every connection drains and acks, and the store closes
// (final checkpoint when durable).
//
// With -metrics (needs -stats), the same address also serves Prometheus
// text exposition at /metrics — every layer instrumented, counters
// reconciling exactly with /stats — and the standard pprof profiles
// under /debug/pprof/. The process always carries a flight recorder — a
// fixed-size in-memory ring of structured events (connections, refusals,
// WAL fsyncs, checkpoints, window seals) — dumpable as JSON at
// /debug/events on the -stats address and to stderr on SIGQUIT (the
// process keeps running). With -trace-sample N, one in N insert frames
// additionally carries a latency span decomposing its end-to-end time
// into per-stage histograms (hhgb_server_ingest_stage_seconds, under
// -metrics); sampled frames slower than -slow-frame are recorded stage
// by stage into the ring (0 records every sampled frame). Sampling adds
// zero allocations to unsampled frames. Reads get the same treatment:
// when tracing is on at all (-trace-sample, or a positive -slow-query),
// EVERY query — lookup, top-k, summary, and their range forms — carries
// a span decomposing it into decode/queue/plan/fanout/merge/encode/ack
// stage histograms (hhgb_query_stage_seconds) plus fan-out-shape
// histograms (hhgb_query_shards_touched, hhgb_query_windows_touched),
// and queries at or over -slow-query land in the flight ring as a
// causally ordered stage chain ending in a slow_query marker —
// /debug/events?kind=slow_query lists them, ?limit=N bounds the dump.
// Clients can also ask the server to EXPLAIN any read: the
// hhgbclient.Explain* methods return the exact window cover a query is
// served from, per-leg timings, uncovered holes, and pushdown-cache
// traffic. With -sub-queue (needs
// -window), each summary
// subscription is bounded to N undelivered summaries; a subscriber that
// stays over the bound longer than -sub-patience (default: evict on the
// next over-bound seal) is disconnected with a typed eviction error
// rather than letting its backlog grow without bound. -sub-patience also
// bounds how long a single summary write may block on a stalled
// connection before the server gives up on it.
package main

import (
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hhgb"
	"hhgb/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hhgb-serve: ")
	var (
		addr        = flag.String("addr", "127.0.0.1:4739", "listen address (use :0 for an ephemeral port)")
		scale       = flag.Int("scale", 32, "matrix dimension is 2^scale")
		shards      = flag.Int("shards", 0, "shard count (0 = GOMAXPROCS)")
		window      = flag.Duration("window", 0, "temporal window duration (0 = flat, un-windowed server)")
		rollups     = flag.String("rollups", "", "comma-separated roll-up factors, e.g. 60,60 (needs -window)")
		retentions  = flag.String("retentions", "", "comma-separated per-level retentions, e.g. 5m,0 (0 = forever; needs -window)")
		lateness    = flag.Duration("lateness", 0, "out-of-orderness budget before windows seal (needs -window)")
		durable     = flag.String("durable", "", "durability directory (empty = in-memory only)")
		syncEvery   = flag.Int("sync-every", 0, "group-commit interval in batches (0 = default; needs -durable)")
		tlsCert     = flag.String("tls-cert", "", "TLS certificate file (with -tls-key; empty = plaintext)")
		tlsKey      = flag.String("tls-key", "", "TLS private key file")
		statsAddr   = flag.String("stats", "", "serve JSON stats on this address at /stats (empty = off)")
		metricsOn   = flag.Bool("metrics", false, "serve Prometheus metrics at /metrics and pprof at /debug/pprof/ on the -stats address (needs -stats)")
		subQueue    = flag.Int("sub-queue", 0, "per-subscriber summary queue bound (0 = unbounded, never evict; needs -window)")
		subPatience = flag.Duration("sub-patience", 0, "how long a subscriber may stay over -sub-queue before eviction (0 = evict on the next over-bound seal)")
		maxInflight = flag.Int64("max-inflight", 0, "aggregate in-flight entry budget (0 = default)")
		maxBatch    = flag.Int("max-batch", 0, "per-frame entry cap (0 = default)")
		queueDepth  = flag.Int("queue-depth", 0, "per-connection apply queue depth in frames (0 = default)")
		traceSample = flag.Int("trace-sample", 0, "sample 1 in N insert frames into per-stage latency spans (0 = off)")
		slowFrame   = flag.Duration("slow-frame", 0, "record sampled frames at or over this end-to-end latency into the flight ring (0 = every sampled frame)")
		slowQuery   = flag.Duration("slow-query", 0, "record spanned queries at or over this end-to-end latency into the flight ring; a positive value turns query spans on by itself (0 = every spanned query, spans need -trace-sample; negative = ring off)")
	)
	flag.Parse()
	if err := run(*addr, *scale, *shards, *window, *rollups, *retentions, *lateness,
		*durable, *syncEvery, *tlsCert, *tlsKey, *statsAddr, *metricsOn,
		*subQueue, *subPatience, *maxInflight, *maxBatch, *queueDepth,
		*traceSample, *slowFrame, *slowQuery); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, scale, shards int, window time.Duration, rollups, retentions string, lateness time.Duration,
	durable string, syncEvery int, tlsCert, tlsKey, statsAddr string, metricsOn bool,
	subQueue int, subPatience time.Duration, maxInflight int64, maxBatch, queueDepth int,
	traceSample int, slowFrame, slowQuery time.Duration) error {
	// The flight recorder always runs: recording is allocation-free and
	// the ring is fixed-size, so there is nothing to turn off. It is
	// shared by the server and the store so both sides' events interleave
	// on one timeline.
	rec := hhgb.NewFlightRecorder(0)
	cfg := server.Config{
		MaxBatch:    maxBatch,
		QueueDepth:  queueDepth,
		MaxInFlight: maxInflight,
		Logf:        log.Printf,
		Flight:      rec,
		TraceSample: traceSample,
		SlowFrame:   slowFrame,
		SlowQuery:   slowQuery,
	}
	if metricsOn && statsAddr == "" {
		return fmt.Errorf("-metrics needs -stats")
	}
	if subQueue < 0 {
		return fmt.Errorf("-sub-queue must be >= 0")
	}
	if subPatience < 0 {
		return fmt.Errorf("-sub-patience must be >= 0")
	}
	if (subQueue > 0 || subPatience > 0) && window == 0 {
		return fmt.Errorf("-sub-queue/-sub-patience need -window")
	}
	if subPatience > 0 && subQueue == 0 {
		return fmt.Errorf("-sub-patience needs -sub-queue")
	}
	var reg *hhgb.Metrics
	if metricsOn {
		reg = hhgb.NewMetrics()
		cfg.Metrics = reg
	}
	if subPatience > 0 {
		cfg.SubPatience = subPatience
	}
	storeOpts := []hhgb.Option{hhgb.WithFlightRecorder(rec)}
	if reg != nil {
		storeOpts = append(storeOpts, hhgb.WithMetrics(reg))
	}
	if subQueue > 0 {
		storeOpts = append(storeOpts, hhgb.WithSubscriberQueue(subQueue))
	}
	if subPatience > 0 {
		storeOpts = append(storeOpts, hhgb.WithSubscriberPatience(subPatience))
	}
	if (tlsCert == "") != (tlsKey == "") {
		return fmt.Errorf("-tls-cert and -tls-key go together")
	}
	if tlsCert != "" {
		cert, err := tls.LoadX509KeyPair(tlsCert, tlsKey)
		if err != nil {
			return fmt.Errorf("loading TLS keypair: %w", err)
		}
		cfg.TLS = &tls.Config{Certificates: []tls.Certificate{cert}}
	}
	var closeStore func() error
	if window > 0 {
		wm, err := openWindowed(scale, shards, window, rollups, retentions, lateness, durable, syncEvery, storeOpts)
		if err != nil {
			return err
		}
		cfg.Windowed = wm
		closeStore = wm.Close
	} else {
		if rollups != "" || retentions != "" || lateness != 0 {
			return fmt.Errorf("-rollups/-retentions/-lateness need -window")
		}
		m, err := openMatrix(scale, shards, durable, syncEvery, storeOpts)
		if err != nil {
			return err
		}
		cfg.Matrix = m
		closeStore = m.Close
	}
	srv, err := server.New(cfg)
	if err != nil {
		closeStore()
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		closeStore()
		return err
	}
	// The signal handler must be live before the listening line prints:
	// scripts parse that line as "ready", and ready includes being safe
	// to SIGINT/SIGTERM without killing the process over a half-open
	// store.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	// SIGQUIT dumps the flight ring to stderr and keeps serving (Notify
	// replaces the runtime's default stack-dump-and-exit handling).
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			log.Printf("SIGQUIT: dumping flight recorder (%d events recorded)", rec.Len())
			if err := rec.WriteJSON(os.Stderr); err != nil {
				log.Printf("flight dump: %v", err)
			}
		}
	}()
	fmt.Printf("listening on %s\n", ln.Addr())

	if statsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/stats", srv.StatsHandler())
		mux.Handle("/debug/events", rec.Handler())
		if reg != nil {
			mux.Handle("/metrics", reg.Handler())
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		sl, err := net.Listen("tcp", statsAddr)
		if err != nil {
			ln.Close()
			closeStore()
			return err
		}
		fmt.Printf("stats on http://%s/stats\n", sl.Addr())
		if reg != nil {
			fmt.Printf("metrics on http://%s/metrics\n", sl.Addr())
		}
		go http.Serve(sl, mux)
	}

	// Graceful shutdown: drain connections, then close the store (final
	// checkpoint when durable).
	go func() {
		s := <-sig
		log.Printf("%v: draining", s)
		srv.Close()
	}()

	if err := srv.Serve(ln); err != nil && !errors.Is(err, server.ErrServerClosed) {
		closeStore()
		return err
	}
	srv.Close() // idempotent; covers Serve ending on a listener error
	st := srv.Stats()
	log.Printf("drained: %d conns served, %d batches, %d entries, %d overloads, %d summaries pushed",
		st.TotalConns, st.InsertBatches, st.InsertEntries, st.Overloads, st.WindowSummaries)
	return closeStore()
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseDurations(s string) ([]time.Duration, error) {
	if s == "" {
		return nil, nil
	}
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "0" {
			out = append(out, 0)
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			return nil, fmt.Errorf("bad duration %q", part)
		}
		out = append(out, d)
	}
	return out, nil
}

// openWindowed builds the service's temporal store: in-memory, freshly
// durable, or recovered from a previous run's durable root.
func openWindowed(scale, shards int, window time.Duration, rollups, retentions string, lateness time.Duration,
	durable string, syncEvery int, extra []hhgb.Option) (*hhgb.Windowed, error) {
	if syncEvery != 0 && durable == "" {
		return nil, fmt.Errorf("-sync-every requires -durable")
	}
	if durable != "" {
		if _, err := os.Stat(filepath.Join(durable, "WINDOWSTORE.json")); err == nil {
			// Existing durable store: recover it (the manifest fixes the
			// shape; -scale/-shards/-window/... are ignored, but tuning
			// like metrics and subscriber bounds still applies).
			ropts := append([]hhgb.Option(nil), extra...)
			if syncEvery > 0 {
				ropts = append(ropts, hhgb.WithSyncEvery(syncEvery))
			}
			wm, err := hhgb.RecoverWindowed(durable, ropts...)
			if err != nil {
				return nil, fmt.Errorf("recovering %s: %w", durable, err)
			}
			log.Printf("recovered windowed store from %s (dim %d, window %v, %d levels)",
				durable, wm.Dim(), wm.Window(), wm.Levels())
			return wm, nil
		}
	}
	opts := append([]hhgb.Option(nil), extra...)
	if shards > 0 {
		opts = append(opts, hhgb.WithShards(shards))
	}
	if lateness > 0 {
		opts = append(opts, hhgb.WithLateness(lateness))
	}
	if f, err := parseInts(rollups); err != nil {
		return nil, fmt.Errorf("-rollups: %w", err)
	} else if f != nil {
		opts = append(opts, hhgb.WithRollUps(f...))
	}
	if r, err := parseDurations(retentions); err != nil {
		return nil, fmt.Errorf("-retentions: %w", err)
	} else if r != nil {
		opts = append(opts, hhgb.WithRetentions(r...))
	}
	if durable != "" {
		opts = append(opts, hhgb.WithDurability(durable))
		if syncEvery > 0 {
			opts = append(opts, hhgb.WithSyncEvery(syncEvery))
		}
	}
	return hhgb.NewWindowed(uint64(1)<<uint(scale), window, opts...)
}

// openMatrix builds the service's flat matrix: in-memory, freshly
// durable, or recovered from a previous run's durable state.
func openMatrix(scale, shards int, durable string, syncEvery int, extra []hhgb.Option) (*hhgb.Sharded, error) {
	dim := uint64(1) << uint(scale)
	opts := append([]hhgb.Option(nil), extra...)
	if shards > 0 {
		opts = append(opts, hhgb.WithShards(shards))
	}
	if durable == "" {
		if syncEvery != 0 {
			return nil, fmt.Errorf("-sync-every requires -durable")
		}
		return hhgb.NewSharded(dim, opts...)
	}
	if syncEvery > 0 {
		opts = append(opts, hhgb.WithSyncEvery(syncEvery))
	}
	if _, err := os.Stat(filepath.Join(durable, "MANIFEST.json")); err == nil {
		// Existing durable state: recover it (the manifest fixes the
		// dimension and shard count; -scale/-shards are ignored, but
		// tuning like metrics still applies).
		ropts := append([]hhgb.Option(nil), extra...)
		if syncEvery > 0 {
			ropts = append(ropts, hhgb.WithSyncEvery(syncEvery))
		}
		m, err := hhgb.Recover(durable, ropts...)
		if err != nil {
			return nil, fmt.Errorf("recovering %s: %w", durable, err)
		}
		log.Printf("recovered durable matrix from %s (dim %d, %d shards)", durable, m.Dim(), m.Shards())
		return m, nil
	}
	return hhgb.NewSharded(dim, append(opts, hhgb.WithDurability(durable))...)
}
