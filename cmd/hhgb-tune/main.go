// Command hhgb-tune sweeps the hierarchical matrix's tuning parameters —
// base cut, cut ratio, level count and batch size — and reports the
// resulting single-instance update rates (experiment E9, the paper's
// "parameters are easily tunable to achieve optimal performance" claim).
//
// Usage:
//
//	hhgb-tune [-edges N] [-scale S] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"

	"hhgb/internal/bench"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/powerlaw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hhgb-tune: ")
	var (
		edges = flag.Int("edges", 4_000_000, "updates per configuration")
		scale = flag.Int("scale", 28, "R-MAT scale")
		seed  = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()

	fmt.Printf("cut-parameter sweep: %d updates per point, R-MAT scale %d\n", *edges, *scale)
	fmt.Printf("(stream pre-generated once; the store is made scannable after every batch,\n")
	fmt.Printf(" as the paper's per-set statistics require)\n\n")

	// Pre-generate the stream so every configuration replays identical
	// data and generation cost stays out of the measurements.
	g, err := powerlaw.NewRMAT(*scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	streamRows := make([]gb.Index, *edges)
	streamCols := make([]gb.Index, *edges)
	if err := g.Fill(streamRows, streamCols); err != nil {
		log.Fatal(err)
	}
	sweepState = &sweep{rows: streamRows, cols: streamCols, scale: *scale}

	// Sweep 1: base cut at fixed ratio/levels/batch.
	fmt.Println("sweep 1: base cut c1 (levels=4, ratio=16, batch=100000)")
	for _, base := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20} {
		r := measure(100_000, hier.GeometricCuts(4, base, 16))
		fmt.Printf("  c1 = %8d: %12s updates/s\n", base, bench.Eng(r))
	}

	// Sweep 2: level count at fixed base/ratio.
	fmt.Println("\nsweep 2: levels N (base=2^14, ratio=16, batch=100000)")
	for _, levels := range []int{1, 2, 3, 4, 5, 6, 8} {
		r := measure(100_000, hier.GeometricCuts(levels, 1<<14, 16))
		fmt.Printf("  N = %d: %12s updates/s\n", levels, bench.Eng(r))
	}

	// Sweep 3: cut ratio.
	fmt.Println("\nsweep 3: cut ratio (levels=4, base=2^14, batch=100000)")
	for _, ratio := range []int{2, 4, 8, 16, 32, 64} {
		r := measure(100_000, hier.GeometricCuts(4, 1<<14, ratio))
		fmt.Printf("  ratio = %2d: %12s updates/s\n", ratio, bench.Eng(r))
	}

	// Sweep 4: batch size.
	fmt.Println("\nsweep 4: batch size (levels=4, base=2^14, ratio=16)")
	for _, batch := range []int{100, 1_000, 10_000, 100_000, 1_000_000} {
		if batch > *edges {
			break
		}
		r := measure(batch, hier.GeometricCuts(4, 1<<14, 16))
		fmt.Printf("  batch = %8d: %12s updates/s\n", batch, bench.Eng(r))
	}
}

// sweep holds the shared pre-generated stream.
type sweep struct {
	rows  []gb.Index
	cols  []gb.Index
	scale int
}

var sweepState *sweep

func measure(batch int, cuts []int) float64 {
	s := sweepState
	dim := gb.Index(1) << uint(s.scale)
	h, err := hier.New[uint64](dim, dim, hier.Config{Cuts: cuts})
	if err != nil {
		log.Fatal(err)
	}
	vals := make([]uint64, batch)
	for k := range vals {
		vals[k] = 1
	}
	edges := len(s.rows)
	rate, err := bench.Measure(int64(edges), func() error {
		for done := 0; done < edges; done += batch {
			end := done + batch
			if end > edges {
				end = edges
			}
			if err := h.Update(s.rows[done:end], s.cols[done:end], vals[:end-done]); err != nil {
				return err
			}
			// Per-set statistics require a scannable store after every
			// batch: O(c1) for a cascade, O(nnz) for a flat matrix.
			h.Materialize()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return rate.PerSecond()
}
