// Command trafficgen generates power-law edge streams — the paper's
// workload — as TSV (row<TAB>col<TAB>count), the compact binary matrix
// format, or a live network stream into a running hhgb-serve instance.
//
// Usage:
//
//	trafficgen [-edges N] [-scale S] [-gen rmat|pareto] [-alpha F] [-seed N]
//	           [-rate R] [-start T] [-format tsv|matrix] [-o file]
//	trafficgen -connect host:port [-conns N] [-batch N] [-edges N] [-scale S] [-gen ...] [-seed N] [-rate R] [-start T]
//	           [-verify] [-query-rate R] [-queries N]
//
// With -connect, the generator becomes a load driver: -conns client
// connections stream -edges edges total (split evenly) as batched insert
// frames of -batch entries, then Flush — so the run ends at a durable
// point on a durable server — and report the aggregate insert rate plus
// client-observed ack latency (ship → server ack) as p50/p99/max across
// every acked frame on every connection.
// Several trafficgen processes can hammer one server concurrently; each
// should get its own -seed.
//
// Streams are deterministic per seed: two runs with the same -seed, -gen,
// -scale and -alpha produce identical edges, so any run is replayable
// from its flag line alone. -seed 0 asks for a fresh stream instead: one
// seed is drawn at random, logged, and then used exactly like an explicit
// seed — so an exploratory run that hits something interesting is
// replayed by copying the logged value. hhgb-hotpath's -seed selects the
// same stream family, so a workload found here feeds the allocation gate
// unchanged.
//
// The driver clients run exactly-once sessions with auto-reconnect: a
// server restart mid-run (even kill -9 of a durable server) only pauses
// the stream — unacked frames retransmit under the resumed session and
// nothing lands twice. -verify closes the loop: after the final Flush it
// compares the server's packet total against the weights actually
// generated and exits nonzero on any mismatch, so a smoke run that kills
// and restarts the server still asserts the exact -edges count landed.
//
// With -rate, edges carry event timestamps advancing 1/R seconds per edge
// from -start (unix seconds): TSV output gains a fourth ts column
// (nanoseconds), and -connect streams timestamped inserts — required
// against a windowed hhgb-serve, whose window duration the client learns
// in the handshake and uses to cut frames at window boundaries.
//
// The driver can mix reads into the run: -query-rate R paces a mixed
// read workload (lookup, top-k, summary; plus their range forms on a
// timestamped stream) on a dedicated connection while the stream runs,
// and -queries N issues exactly N rounds of that mix after the final
// Flush — a deterministic count smoke checks can assert against the
// server's query metrics.
package main

import (
	"bufio"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hhgb"
	"hhgb/hhgbclient"
	"hhgb/internal/gb"
	"hhgb/internal/powerlaw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trafficgen: ")
	var (
		edges     = flag.Int("edges", 1_000_000, "edges to generate")
		scale     = flag.Int("scale", 24, "vertex-space scale (2^scale vertices)")
		gen       = flag.String("gen", "rmat", "generator: rmat | pareto")
		alpha     = flag.Float64("alpha", 1.1, "pareto shape (pareto generator only)")
		seed      = flag.Uint64("seed", 1, "generator seed (0 = draw one at random and log it for replay)")
		format    = flag.String("format", "tsv", "output format: tsv | matrix")
		out       = flag.String("o", "-", "output file (- for stdout)")
		connect   = flag.String("connect", "", "stream to a hhgb-serve address instead of writing a file")
		conns     = flag.Int("conns", 1, "client connections (with -connect)")
		batch     = flag.Int("batch", 4096, "entries per insert frame (with -connect)")
		rate      = flag.Float64("rate", 0, "event-time edges per second; 0 = untimestamped edges")
		start     = flag.Int64("start", 1_700_000_000, "event time of the first edge, unix seconds (with -rate)")
		verify    = flag.Bool("verify", false, "after streaming, compare the server's packet total to the generated stream (with -connect)")
		queryRate = flag.Float64("query-rate", 0, "mixed read ops per second on a dedicated connection while the stream runs (with -connect)")
		queries   = flag.Int("queries", 0, "rounds of the mixed read workload to issue after the stream flushes (with -connect; a deterministic count for smoke checks)")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = drawSeed()
		log.Printf("-seed 0: drew seed %d; replay this exact stream with -seed %d", *seed, *seed)
	}
	if *connect != "" {
		if err := runConnect(*connect, *conns, *batch, *edges, *scale, *gen, *alpha, *seed, *rate, *start, *verify, *queryRate, *queries); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(*edges, *scale, *gen, *alpha, *seed, *format, *out, *rate, *start); err != nil {
		log.Fatal(err)
	}
}

// drawSeed returns a nonzero random seed for -seed 0 runs. The draw comes
// from the OS entropy source, not the generator family itself, so the
// drawn seed carries no structure the stream could correlate with.
func drawSeed() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		log.Fatalf("drawing a random seed: %v", err)
	}
	s := binary.LittleEndian.Uint64(b[:])
	if s == 0 {
		s = 1 // zero means "draw" on the flag; never use it as a seed
	}
	return s
}

// stamper assigns event timestamps: edge k happens k/rate seconds after
// the start time. A nil stamper means untimestamped generation.
func newStamper(rate float64, startSec int64) func(k int) int64 {
	if rate <= 0 {
		return nil
	}
	startNs := startSec * int64(time.Second)
	return func(k int) int64 {
		return startNs + int64(float64(k)*float64(time.Second)/rate)
	}
}

// newGen builds one edge generator; each connection gets its own (with a
// distinct seed) so streams never share state.
func newGen(gen string, scale int, alpha float64, seed uint64) (func() powerlaw.Edge, error) {
	switch gen {
	case "rmat":
		g, err := powerlaw.NewRMAT(scale, seed)
		if err != nil {
			return nil, err
		}
		return g.Edge, nil
	case "pareto":
		p, err := powerlaw.NewParetoPairs(gb.Index(1)<<uint(scale), alpha, seed)
		if err != nil {
			return nil, err
		}
		return p.Edge, nil
	default:
		return nil, fmt.Errorf("unknown generator %q (want rmat or pareto)", gen)
	}
}

// retryTransient retries op while the server is briefly away (a restart
// mid-run): the client's auto-reconnect re-dials on the next call, but
// that dial keeps failing until the server is back on the address.
// Definitive outcomes — success, an explicitly dropped batch, a closed
// client — surface immediately; only transient unreachability is retried.
func retryTransient(op func() error) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := op()
		if err == nil ||
			errors.Is(err, hhgbclient.ErrOverloaded) ||
			errors.Is(err, hhgbclient.ErrRejected) ||
			errors.Is(err, hhgbclient.ErrClosed) ||
			time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// ackStats aggregates client-observed ack round trips across every
// connection. The observer runs on each client's receive goroutine, so
// the append is mutex-guarded; one duration per acked frame is cheap
// next to the frame itself.
type ackStats struct {
	mu      sync.Mutex
	samples []time.Duration
}

func (a *ackStats) observe(d time.Duration) {
	a.mu.Lock()
	a.samples = append(a.samples, d)
	a.mu.Unlock()
}

// report logs p50/p99/max over the collected round trips, if any.
func (a *ackStats) report() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.samples) == 0 {
		return
	}
	sort.Slice(a.samples, func(i, j int) bool { return a.samples[i] < a.samples[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(a.samples)-1))
		return a.samples[i]
	}
	log.Printf("ack latency over %d frames: p50 %v, p99 %v, max %v",
		len(a.samples), q(0.50), q(0.99), a.samples[len(a.samples)-1])
}

// readMix builds the mixed read workload behind -query-rate and
// -queries: point lookup, top-k, and summary, plus their range forms on
// a timestamped (windowed) stream. The lookup probes the workload's own
// first edge, so it always exercises a live cell; the range ops span the
// whole stream.
func readMix(c *hhgbclient.Client, gen string, scale int, alpha float64, seed uint64, stamp func(k int) int64, edges int) ([]func() error, error) {
	next, err := newGen(gen, scale, alpha, seed)
	if err != nil {
		return nil, err
	}
	e := next()
	ops := []func() error{
		func() error { _, _, err := c.Lookup(e.Row, e.Col); return err },
		func() error { _, err := c.TopSources(10); return err },
		func() error { _, err := c.Summary(); return err },
	}
	if stamp != nil {
		t0 := time.Unix(0, stamp(0))
		t1 := time.Unix(0, stamp(edges-1)+1)
		ops = append(ops,
			func() error { _, _, err := c.RangeLookup(e.Row, e.Col, t0, t1); return err },
			func() error { _, err := c.RangeTopSources(10, t0, t1); return err },
			func() error { _, err := c.RangeSummary(t0, t1); return err },
		)
	}
	return ops, nil
}

// runConnect streams the workload into a server over conns connections
// and reports the aggregate rate.
func runConnect(addr string, conns, batch, edges, scale int, gen string, alpha float64, seed uint64, rate float64, startSec int64, verify bool, queryRate float64, queries int) error {
	if conns < 1 {
		return fmt.Errorf("-conns %d < 1", conns)
	}
	per := edges / conns
	if per < 1 {
		return fmt.Errorf("-edges %d gives no work for %d conns", edges, conns)
	}
	// The remainder rides on the last connection, so exactly -edges edges
	// are streamed whatever the split.
	rem := edges % conns
	var (
		wg          sync.WaitGroup
		errMu       sync.Mutex
		first       error
		sentPackets atomic.Uint64 // total weight streamed and flushed
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
	}
	var acks ackStats
	// -query-rate: a dedicated connection paces the mixed read workload
	// while the stream runs — reads contending with writes, the shape the
	// query observability plane is built to explain.
	stopReads := make(chan struct{})
	var readsDone sync.WaitGroup
	var readsIssued atomic.Uint64
	if queryRate > 0 {
		readsDone.Add(1)
		go func() {
			defer readsDone.Done()
			qc, err := hhgbclient.Dial(addr, hhgbclient.WithReconnect())
			if err != nil {
				log.Printf("query-rate: dial: %v", err)
				return
			}
			defer qc.Close()
			ops, err := readMix(qc, gen, scale, alpha, seed, newStamper(rate, startSec), edges)
			if err != nil {
				log.Printf("query-rate: %v", err)
				return
			}
			tick := time.NewTicker(time.Duration(float64(time.Second) / queryRate))
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stopReads:
					return
				case <-tick.C:
				}
				if err := retryTransient(ops[i%len(ops)]); err != nil {
					log.Printf("query-rate: %v", err)
					return
				}
				readsIssued.Add(1)
			}
		}()
	}
	start := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mine := per
			if i == conns-1 {
				mine += rem
			}
			next, err := newGen(gen, scale, alpha, seed+uint64(i)*0x9e3779b9)
			if err != nil {
				fail(err)
				return
			}
			c, err := hhgbclient.Dial(addr, hhgbclient.WithFlushEntries(batch), hhgbclient.WithReconnect(),
				hhgbclient.WithAckLatency(acks.observe))
			if err != nil {
				fail(fmt.Errorf("conn %d: %w", i, err))
				return
			}
			defer c.Close()
			stamp := newStamper(rate, startSec)
			if (c.Window() != 0) != (stamp != nil) {
				if stamp == nil {
					fail(fmt.Errorf("conn %d: server is windowed; stream timestamped edges with -rate", i))
				} else {
					fail(fmt.Errorf("conn %d: server is not windowed; drop -rate", i))
				}
				return
			}
			src := make([]uint64, 0, batch)
			dst := make([]uint64, 0, batch)
			wgt := make([]uint64, 0, batch)
			var batchTS int64    // event time of the buffered batch (timestamped mode)
			var myPackets uint64 // weight streamed by this connection
			ship := func() error {
				if len(src) == 0 {
					return nil
				}
				var err error
				if stamp != nil {
					err = c.AppendWeightedAt(time.Unix(0, batchTS), src, dst, wgt)
				} else {
					err = c.AppendWeighted(src, dst, wgt)
				}
				if err != nil {
					// An Append error consumes nothing: the local batch is
					// intact and retryTransient re-ships it verbatim.
					return err
				}
				src, dst, wgt = src[:0], dst[:0], wgt[:0]
				return nil
			}
			for k := 0; k < mine; k++ {
				e := next()
				if stamp != nil {
					// Entries sharing a batch share its event time; cut
					// the batch whenever the stamp leaves the server
					// window holding it, so no edge shifts windows.
					ts := stamp(k)
					w := int64(c.Window())
					if len(src) > 0 && ts-ts%w != batchTS-batchTS%w {
						if err := retryTransient(ship); err != nil {
							fail(fmt.Errorf("conn %d: %w", i, err))
							return
						}
					}
					if len(src) == 0 {
						batchTS = ts
					}
				}
				src = append(src, e.Row)
				dst = append(dst, e.Col)
				wgt = append(wgt, e.Val)
				myPackets += e.Val
				if len(src) == batch {
					if err := retryTransient(ship); err != nil {
						fail(fmt.Errorf("conn %d: %w", i, err))
						return
					}
				}
			}
			if err := retryTransient(ship); err != nil {
				fail(fmt.Errorf("conn %d: %w", i, err))
				return
			}
			if err := retryTransient(c.Flush); err != nil {
				fail(fmt.Errorf("conn %d: flush: %w", i, err))
				return
			}
			sentPackets.Add(myPackets)
		}(i)
	}
	wg.Wait()
	close(stopReads)
	readsDone.Wait()
	if queryRate > 0 {
		log.Printf("query-rate: issued %d reads during the stream", readsIssued.Load())
	}
	if first != nil {
		return first
	}
	elapsed := time.Since(start)
	total := edges
	log.Printf("streamed %d edges over %d conns in %.2fs (%.0f inserts/s, batch %d)",
		total, conns, elapsed.Seconds(), float64(total)/elapsed.Seconds(), batch)
	acks.report()

	// One extra connection reads the server's aggregate view, so a smoke
	// run doubles as an end-to-end query check.
	var sum hhgb.Summary
	if err := retryTransient(func() error {
		c, err := hhgbclient.Dial(addr)
		if err != nil {
			return err
		}
		defer c.Close()
		sum, err = c.Summary()
		return err
	}); err != nil {
		return err
	}
	log.Printf("server summary: %d entries, %d sources, %d destinations, %d packets",
		sum.Entries, sum.Sources, sum.Destinations, sum.TotalPackets)
	if verify {
		if want := sentPackets.Load(); sum.TotalPackets != want {
			return fmt.Errorf("verify: server holds %d packets, stream carried %d (lost or doubled frames)", sum.TotalPackets, want)
		}
		log.Printf("verify: server totals match the sent stream exactly (%d packets)", sentPackets.Load())
	}
	// -queries: a deterministic post-stream read mix — N rounds of every
	// op in order — so smoke checks can assert exact per-family query
	// counts in the server's /metrics.
	if queries > 0 {
		qc, err := hhgbclient.Dial(addr)
		if err != nil {
			return err
		}
		defer qc.Close()
		ops, err := readMix(qc, gen, scale, alpha, seed, newStamper(rate, startSec), edges)
		if err != nil {
			return err
		}
		for r := 0; r < queries; r++ {
			for _, op := range ops {
				if err := retryTransient(op); err != nil {
					return fmt.Errorf("queries round %d: %w", r, err)
				}
			}
		}
		log.Printf("queries: issued %d reads (%d rounds of %d ops)", queries*len(ops), queries, len(ops))
	}
	return nil
}

func run(edges, scale int, gen string, alpha float64, seed uint64, format, out string, rate float64, startSec int64) error {
	next, err := newGen(gen, scale, alpha, seed)
	if err != nil {
		return err
	}
	stamp := newStamper(rate, startSec)
	if stamp != nil && format != "tsv" {
		return fmt.Errorf("-rate timestamps are only representable in tsv output")
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch format {
	case "tsv":
		bw := bufio.NewWriterSize(w, 1<<20)
		for k := 0; k < edges; k++ {
			e := next()
			var err error
			if stamp != nil {
				_, err = fmt.Fprintf(bw, "%d\t%d\t%d\t%d\n", e.Row, e.Col, e.Val, stamp(k))
			} else {
				_, err = fmt.Fprintf(bw, "%d\t%d\t%d\n", e.Row, e.Col, e.Val)
			}
			if err != nil {
				return err
			}
		}
		return bw.Flush()
	case "matrix":
		dim := gb.Index(1) << uint(scale)
		m, err := gb.NewMatrix[uint64](dim, dim)
		if err != nil {
			return err
		}
		const chunk = 1 << 16
		rows := make([]gb.Index, 0, chunk)
		cols := make([]gb.Index, 0, chunk)
		vals := make([]uint64, 0, chunk)
		for k := 0; k < edges; k++ {
			e := next()
			rows = append(rows, e.Row)
			cols = append(cols, e.Col)
			vals = append(vals, e.Val)
			if len(rows) == chunk || k == edges-1 {
				if err := m.AppendTuples(rows, cols, vals); err != nil {
					return err
				}
				rows, cols, vals = rows[:0], cols[:0], vals[:0]
			}
		}
		return gb.Encode(w, m, gb.Uint64Codec[uint64]())
	default:
		return fmt.Errorf("unknown format %q (want tsv or matrix)", format)
	}
}
