// Command trafficgen generates power-law edge streams — the paper's
// workload — as TSV (row<TAB>col<TAB>count) or the compact binary matrix
// format, for feeding external tools or replaying fixed workloads.
//
// Usage:
//
//	trafficgen [-edges N] [-scale S] [-gen rmat|pareto] [-alpha F] [-seed N] [-format tsv|matrix] [-o file]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"hhgb/internal/gb"
	"hhgb/internal/powerlaw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trafficgen: ")
	var (
		edges  = flag.Int("edges", 1_000_000, "edges to generate")
		scale  = flag.Int("scale", 24, "vertex-space scale (2^scale vertices)")
		gen    = flag.String("gen", "rmat", "generator: rmat | pareto")
		alpha  = flag.Float64("alpha", 1.1, "pareto shape (pareto generator only)")
		seed   = flag.Uint64("seed", 1, "generator seed")
		format = flag.String("format", "tsv", "output format: tsv | matrix")
		out    = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()
	if err := run(*edges, *scale, *gen, *alpha, *seed, *format, *out); err != nil {
		log.Fatal(err)
	}
}

func run(edges, scale int, gen string, alpha float64, seed uint64, format, out string) error {
	var next func() powerlaw.Edge
	switch gen {
	case "rmat":
		g, err := powerlaw.NewRMAT(scale, seed)
		if err != nil {
			return err
		}
		next = g.Edge
	case "pareto":
		p, err := powerlaw.NewParetoPairs(gb.Index(1)<<uint(scale), alpha, seed)
		if err != nil {
			return err
		}
		next = p.Edge
	default:
		return fmt.Errorf("unknown generator %q (want rmat or pareto)", gen)
	}

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch format {
	case "tsv":
		bw := bufio.NewWriterSize(w, 1<<20)
		for k := 0; k < edges; k++ {
			e := next()
			if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\n", e.Row, e.Col, e.Val); err != nil {
				return err
			}
		}
		return bw.Flush()
	case "matrix":
		dim := gb.Index(1) << uint(scale)
		m, err := gb.NewMatrix[uint64](dim, dim)
		if err != nil {
			return err
		}
		const chunk = 1 << 16
		rows := make([]gb.Index, 0, chunk)
		cols := make([]gb.Index, 0, chunk)
		vals := make([]uint64, 0, chunk)
		for k := 0; k < edges; k++ {
			e := next()
			rows = append(rows, e.Row)
			cols = append(cols, e.Col)
			vals = append(vals, e.Val)
			if len(rows) == chunk || k == edges-1 {
				if err := m.AppendTuples(rows, cols, vals); err != nil {
					return err
				}
				rows, cols, vals = rows[:0], cols[:0], vals[:0]
			}
		}
		return gb.Encode(w, m, gb.Uint64Codec[uint64]())
	default:
		return fmt.Errorf("unknown format %q (want tsv or matrix)", format)
	}
}
