// Command hhgb-windows measures the temporal window store against the
// flat sharded path and characterizes range-query locality, emitting the
// BENCH_window.json trajectory artifact CI uploads alongside the shard,
// durability, and network points.
//
// Usage:
//
//	hhgb-windows [-edges N] [-scale S] [-shards N] [-batch N]
//	             [-windows W] [-window D] [-rollup F]
//	             [-benchtime Nx] [-out BENCH_window.json]
//
// Two experiment families ride in the artifact:
//
//   - Ingest: the same pre-generated power-law stream is pushed through a
//     flat hhgb.Sharded matrix and through a hhgb.Windowed store whose
//     event clock sweeps -windows windows (sealing and rolling up as it
//     goes). The windowed point carries windowed_vs_flat in its extras —
//     the temporal layer's ingest overhead at default settings.
//   - Range queries: against the fully-sealed store, spans of 1, 2, 4, …
//     windows are resolved and aggregated (TotalPackets + TopSources),
//     timing each. The windows_touched extra shows latency tracking the
//     cover size, not the store's total nnz: doubling the span roughly
//     doubles the cost, while the untouched windows' contents never
//     enter it.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"hhgb"
	"hhgb/internal/bench"
	"hhgb/internal/powerlaw"
)

var base = time.Unix(1_700_000_000, 0)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hhgb-windows: ")
	var (
		edges     = flag.Int("edges", 500_000, "edges per experiment")
		scale     = flag.Int("scale", 22, "matrix dimension is 2^scale")
		shards    = flag.Int("shards", 0, "shard count per store (0 = GOMAXPROCS)")
		batch     = flag.Int("batch", 4096, "entries per append batch")
		windows   = flag.Int("windows", 16, "level-0 windows the stream spans")
		window    = flag.Duration("window", time.Second, "window duration (event time)")
		rollup    = flag.Int("rollup", 4, "roll-up factor (0 = no roll-ups)")
		benchtime = flag.String("benchtime", "3x", "repetitions per point, as Nx (best of N is reported)")
		out       = flag.String("out", "BENCH_window.json", "trajectory output file")
	)
	flag.Parse()
	reps, err := parseBenchtime(*benchtime)
	if err != nil {
		log.Fatal(err)
	}
	if err := run(*edges, *scale, *shards, *batch, *windows, *window, *rollup, reps, *out); err != nil {
		log.Fatal(err)
	}
}

// parseBenchtime accepts the go-test-style fixed-count form "Nx".
func parseBenchtime(s string) (int, error) {
	v, ok := strings.CutSuffix(s, "x")
	if !ok {
		return 0, fmt.Errorf("-benchtime %q: only the Nx form is supported", s)
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("-benchtime %q: bad repetition count", s)
	}
	return n, nil
}

// workload pre-generates the edge stream and its event timestamps, so the
// timed sections measure ingest, not generation. Timestamps sweep the
// configured number of windows uniformly in edge order.
type workload struct {
	src, dst []uint64
	ts       []time.Time
}

func genWorkload(edges, scale, windows int, window time.Duration) (*workload, error) {
	g, err := powerlaw.NewRMAT(scale, 1)
	if err != nil {
		return nil, err
	}
	w := &workload{
		src: make([]uint64, edges),
		dst: make([]uint64, edges),
		ts:  make([]time.Time, edges),
	}
	span := time.Duration(windows) * window
	for k := 0; k < edges; k++ {
		e := g.Edge()
		w.src[k], w.dst[k] = e.Row, e.Col
		w.ts[k] = base.Add(time.Duration(float64(k) / float64(edges) * float64(span)))
	}
	return w, nil
}

func run(edges, scale, shards, batch, windows int, window time.Duration, rollup, reps int, out string) error {
	wl, err := genWorkload(edges, scale, windows, window)
	if err != nil {
		return err
	}
	dim := uint64(1) << uint(scale)
	var opts []hhgb.Option
	if shards > 0 {
		opts = append(opts, hhgb.WithShards(shards))
	}
	traj := bench.NewTrajectory("window", "inserts/s")
	traj.Meta = map[string]string{
		"edges":   fmt.Sprint(edges),
		"scale":   fmt.Sprint(scale),
		"batch":   fmt.Sprint(batch),
		"windows": fmt.Sprint(windows),
		"window":  window.String(),
		"rollup":  fmt.Sprint(rollup),
		"reps":    fmt.Sprint(reps),
	}

	// Ingest: flat baseline.
	flatRate := 0.0
	for r := 0; r < reps; r++ {
		m, err := hhgb.NewSharded(dim, opts...)
		if err != nil {
			return err
		}
		start := time.Now()
		for k := 0; k < edges; k += batch {
			end := min(k+batch, edges)
			if err := m.Append(wl.src[k:end], wl.dst[k:end]); err != nil {
				m.Close()
				return err
			}
		}
		if err := m.Flush(); err != nil {
			m.Close()
			return err
		}
		rate := float64(edges) / time.Since(start).Seconds()
		flatRate = max(flatRate, rate)
		m.Close()
	}
	traj.AddPoint("ingest/flat", 0, flatRate, map[string]float64{"edges": float64(edges)})
	log.Printf("%-16s %12.0f inserts/s", "ingest/flat", flatRate)

	// Ingest: windowed, the event clock sweeping every window (sealing
	// and rolling up inline — the honest cost of the temporal layer).
	wopts := append(append([]hhgb.Option(nil), opts...), hhgb.WithLateness(0))
	if rollup > 1 {
		wopts = append(wopts, hhgb.WithRollUps(rollup))
	}
	winRate := 0.0
	for r := 0; r < reps; r++ {
		wm, err := hhgb.NewWindowed(dim, window, wopts...)
		if err != nil {
			return err
		}
		start := time.Now()
		for k := 0; k < edges; k += batch {
			end := min(k+batch, edges)
			// A batch shares its first edge's timestamp; the sweep is
			// monotone, so nothing lands behind the frontier.
			if err := wm.Append(wl.ts[k], wl.src[k:end], wl.dst[k:end]); err != nil {
				wm.Close()
				return err
			}
		}
		if err := wm.Flush(); err != nil {
			wm.Close()
			return err
		}
		rate := float64(edges) / time.Since(start).Seconds()
		winRate = max(winRate, rate)
		wm.Close()
	}
	ratio := 0.0
	if winRate > 0 {
		ratio = flatRate / winRate
	}
	traj.AddPoint("ingest/windowed", 1, winRate, map[string]float64{
		"edges":            float64(edges),
		"windowed_vs_flat": ratio, // flat/windowed: 1.0 = free, 1.5 = the budget
	})
	log.Printf("%-16s %12.0f inserts/s (flat/windowed = %.2fx)", "ingest/windowed", winRate, ratio)

	// Range queries against a fully-sealed store: latency vs windows
	// touched. Built once; each span timed reps times, best kept.
	wm, err := hhgb.NewWindowed(dim, window, wopts...)
	if err != nil {
		return err
	}
	defer wm.Close()
	for k := 0; k < edges; k += batch {
		end := min(k+batch, edges)
		if err := wm.Append(wl.ts[k], wl.src[k:end], wl.dst[k:end]); err != nil {
			return err
		}
	}
	if err := wm.Seal(base.Add(time.Duration(windows) * window)); err != nil {
		return err
	}
	totalEntries, err := func() (int, error) {
		v, err := wm.AllTime()
		if err != nil {
			return 0, err
		}
		return v.Entries()
	}()
	if err != nil {
		return err
	}
	for span := 1; span <= windows; span *= 2 {
		bestUs := 0.0
		touched := 0
		for r := 0; r < reps; r++ {
			start := time.Now()
			v, err := wm.QueryRange(base, base.Add(time.Duration(span)*window))
			if err != nil {
				return err
			}
			if _, err := v.TotalPackets(); err != nil {
				return err
			}
			if _, err := v.TopSources(10); err != nil {
				return err
			}
			us := float64(time.Since(start).Microseconds())
			if bestUs == 0 || us < bestUs {
				bestUs = us
			}
			touched = v.Windows()
		}
		traj.AddPoint(fmt.Sprintf("range/span=%d", span), float64(span), bestUs, map[string]float64{
			"windows_touched": float64(touched),
			"store_entries":   float64(totalEntries),
			"unit_us":         1, // this family's Value is microseconds, not inserts/s
		})
		log.Printf("range/span=%-4d %10.0f us (%d windows touched of %d total)", span, bestUs, touched, windows)
	}

	if err := traj.WriteFile(out); err != nil {
		return err
	}
	log.Printf("wrote %s (%d points)", out, len(traj.Points))
	return nil
}
