// Command hhgb-shards measures the single-node shard-scaling figure: one
// logical traffic matrix, shard count on the x-axis, a fixed pool of
// producer goroutines streaming a fixed workload through per-producer
// appenders. It is the dedicated harness for the concurrent sharded ingest
// frontend (the ROADMAP's "shards on x-axis" figure) and the source of the
// BENCH_shards.json trajectory artifact CI accumulates.
//
// The sweep reports, per shard count, the aggregate ingest rate (timed
// through the final drain, so buffered or queued work is never credited)
// and the speedup over a flat single-goroutine cascade streamed the same
// workload. It then cross-checks the pushdown query path: top-k and entry
// counts computed shard-locally and merged must equal the materialized
// merged matrix exactly.
//
// Usage:
//
//	hhgb-shards [-edges N] [-batch N] [-scale S] [-producers P]
//	            [-shards 1,2,4,8] [-levels N] [-base-cut N] [-ratio N]
//	            [-handoff N] [-out BENCH_shards.json] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hhgb/internal/bench"
	"hhgb/internal/cluster"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/powerlaw"
	"hhgb/internal/shard"
	"hhgb/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hhgb-shards: ")
	var (
		edges     = flag.Int("edges", 4_000_000, "total updates per sweep point")
		batch     = flag.Int("batch", 100_000, "updates per batch (the paper's set size)")
		scale     = flag.Int("scale", 24, "R-MAT scale (2^scale vertices)")
		producers = flag.Int("producers", 0, "producer goroutines (0 = all cores)")
		shardsCSV = flag.String("shards", "", "comma-separated shard counts (default: powers of two through 2x cores)")
		levels    = flag.Int("levels", hier.DefaultLevels, "cascade levels per shard")
		baseCut   = flag.Int("base-cut", hier.DefaultBaseCut, "cut c1 of the lowest level")
		ratio     = flag.Int("ratio", hier.DefaultCutRatio, "geometric cut ratio")
		handoff   = flag.Int("handoff", shard.DefaultHandoff, "per-shard producer buffer size in entries")
		out       = flag.String("out", "BENCH_shards.json", "trajectory JSON output path (empty to skip)")
		seed      = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()
	if err := run(*edges, *batch, *scale, *producers, *shardsCSV, *levels, *baseCut, *ratio, *handoff, *out, *seed); err != nil {
		log.Fatal(err)
	}
}

func parseShards(csv string) ([]int, error) {
	if csv == "" {
		return nil, nil // cluster.ShardSweep picks the default
	}
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-shards %q: counts must be positive integers", csv)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(edges, batch, scale, producers int, shardsCSV string, levels, baseCut, ratio, handoff int, out string, seed uint64) error {
	shardCounts, err := parseShards(shardsCSV)
	if err != nil {
		return err
	}
	if producers < 1 {
		producers = runtime.GOMAXPROCS(0)
	}
	cuts := hier.GeometricCuts(levels, baseCut, ratio)
	cfg := cluster.ShardSweepConfig{
		Cuts:        cuts,
		Stream:      powerlaw.StreamSpec{TotalEdges: edges, SetSize: batch, Scale: scale, Seed: seed},
		ShardCounts: shardCounts,
		Producers:   producers,
		Handoff:     handoff,
	}

	fmt.Printf("single-node shard scaling: one logical 2^%d x 2^%d matrix\n", scale, scale)
	fmt.Printf("  workload: %d updates in batches of %d   producers: %d   cuts: %v   handoff: %d\n\n",
		edges, batch, producers, cuts, handoff)

	res, err := cluster.ShardSweep(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("flat baseline (1 cascade, 1 goroutine): %s\n\n", res.Flat)
	series := bench.Series{Name: "sharded"}
	for _, p := range res.Points {
		series.Add(float64(p.Shards), p.Rate())
	}
	flatSeries := bench.Series{Name: "flat"}
	for _, p := range res.Points {
		flatSeries.Add(float64(p.Shards), res.Flat.PerSecond())
	}
	fmt.Print(bench.FormatTable("shards", []bench.Series{series, flatSeries}))
	fmt.Println()
	for _, p := range res.Points {
		fmt.Printf("  shards=%-3d %12s updates/s   %.2fx vs flat\n", p.Shards, bench.Eng(p.Rate()), p.Speedup)
	}
	fmt.Println()
	fmt.Print(bench.PlotLogLog([]bench.Series{series, flatSeries}, 56, 12))

	if err := checkPushdown(scale, cuts, batch, seed); err != nil {
		return err
	}

	if out != "" {
		traj := bench.NewTrajectory("shards", "updates/s")
		traj.Meta = map[string]string{
			"edges":     strconv.Itoa(edges),
			"batch":     strconv.Itoa(batch),
			"scale":     strconv.Itoa(scale),
			"producers": strconv.Itoa(producers),
			"handoff":   strconv.Itoa(handoff),
		}
		traj.AddPoint("flat", 0, res.Flat.PerSecond(), nil)
		for _, p := range res.Points {
			traj.AddPoint(fmt.Sprintf("shards=%d", p.Shards), float64(p.Shards), p.Rate(),
				map[string]float64{"speedup_vs_flat": p.Speedup})
		}
		if err := traj.WriteFile(out); err != nil {
			return err
		}
		fmt.Printf("\nwrote trajectory point: %s\n", out)
	}
	return nil
}

// checkPushdown streams one small workload and verifies the pushdown
// queries against the materialized merged matrix, timing both paths —
// the read-side half of the sharding story.
func checkPushdown(scale int, cuts []int, batch int, seed uint64) error {
	const sets = 8
	dim := gb.Index(1) << uint(scale)
	g, err := shard.NewGroup[uint64](dim, dim, shard.Config{Hier: hier.Config{Cuts: cuts}})
	if err != nil {
		return err
	}
	stream := powerlaw.StreamSpec{TotalEdges: sets * batch, SetSize: batch, Scale: scale, Seed: seed}
	for k := 0; k < sets; k++ {
		edgesK, err := stream.GenerateSet(k)
		if err != nil {
			return err
		}
		r, c, v := powerlaw.ToTuples(edgesK)
		if err := g.Update(r, c, v); err != nil {
			return err
		}
	}
	defer g.Close()

	const k = 10
	t0 := time.Now()
	top, err := g.TopRows(k)
	if err != nil {
		return err
	}
	nvals, err := g.NVals()
	if err != nil {
		return err
	}
	pushdown := time.Since(t0)

	t0 = time.Now()
	q, err := g.Query()
	if err != nil {
		return err
	}
	vec, err := gb.ReduceRows(q, gb.Plus[uint64]())
	if err != nil {
		return err
	}
	want, err := stats.SelectTopK(vec, k)
	if err != nil {
		return err
	}
	materialized := time.Since(t0)

	if nvals != q.NVals() {
		return fmt.Errorf("pushdown NVals %d != materialized %d", nvals, q.NVals())
	}
	if len(top) != len(want) {
		return fmt.Errorf("pushdown top-k length %d != materialized %d", len(top), len(want))
	}
	for i := range top {
		if top[i] != want[i] {
			return fmt.Errorf("pushdown top-k[%d] = %+v, materialized %+v", i, top[i], want[i])
		}
	}
	fmt.Printf("\npushdown query check: top-%d and nvals identical to materialized merge\n", k)
	fmt.Printf("  pushdown %v   materialized %v   (%d entries)\n", pushdown.Round(time.Microsecond), materialized.Round(time.Microsecond), nvals)
	return nil
}
