// Command hhgb-cluster runs the paper's Section III experiment at local
// scale (experiment E12): P shared-nothing goroutine "processes", each
// owning its own hierarchical hypersparse matrix instance and streaming its
// own share of the power-law sets, with the aggregate sustained rate
// measured over wall-clock time.
//
// With -engine sharded-graphblas each "process" is one internally-parallel
// sharded instance; -shards sets its shard count (0 = all cores). That
// variant composes the two scaling axes: shards within a process,
// shared-nothing processes across the machine.
//
// Usage:
//
//	hhgb-cluster [-edges N] [-set-size N] [-max-procs N] [-engine name] [-shards N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"hhgb/internal/baselines"
	"hhgb/internal/bench"
	"hhgb/internal/cluster"
	"hhgb/internal/gb"
	"hhgb/internal/powerlaw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hhgb-cluster: ")
	var (
		edges    = flag.Int("edges", 4_000_000, "total updates")
		setSize  = flag.Int("set-size", 100_000, "updates per set (paper: 100,000)")
		maxProcs = flag.Int("max-procs", 2*runtime.GOMAXPROCS(0), "largest process count to test")
		engine   = flag.String("engine", "hier-graphblas", "engine to scale")
		shards   = flag.Int("shards", 0, "shard count for -engine sharded-graphblas (0 = all cores)")
		seed     = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	total := (*edges / *setSize) * *setSize
	stream := powerlaw.StreamSpec{TotalEdges: total, SetSize: *setSize, Scale: 28, Seed: *seed}
	const dim = gb.Index(1) << 28
	registry := baselines.Registry(dim)
	factory, ok := registry[*engine]
	if !ok {
		log.Fatalf("unknown engine %q", *engine)
	}
	if *shards < 0 {
		log.Fatalf("-shards %d: shard count must be >= 0 (0 = all cores)", *shards)
	}
	if *engine == "sharded-graphblas" {
		// Rebuild the factory with the explicit shard count so every
		// simulated process gets its own sharded frontend.
		factory = func() (baselines.Engine, error) {
			return baselines.NewShardedGraphBLAS(dim, nil, *shards)
		}
	} else if *shards != 0 {
		log.Fatalf("-shards applies only to -engine sharded-graphblas, not %q", *engine)
	}

	fmt.Printf("local scaling: %s, %d updates in %d sets of %d per process\n",
		*engine, stream.TotalEdges, stream.Sets(), stream.SetSize)
	fmt.Printf("machine: GOMAXPROCS=%d\n\n", runtime.GOMAXPROCS(0))

	fmt.Println("weak scaling (paper methodology: each process streams its own graphs):")
	weak, err := cluster.WeakScaling(factory, stream, *maxProcs)
	if err != nil {
		log.Fatal(err)
	}
	printResults(weak)

	fmt.Println("\nstrong scaling (fixed total work, divided):")
	strong, err := cluster.StrongScaling(factory, stream, *maxProcs)
	if err != nil {
		log.Fatal(err)
	}
	printResults(strong)
}

func printResults(results []cluster.RunResult) {
	fmt.Printf("%8s  %14s  %12s  %10s  %10s\n", "procs", "updates/s", "updates", "seconds", "speedup")
	base := results[0].Rate()
	for _, r := range results {
		fmt.Printf("%8d  %14s  %12d  %10.3f  %9.2fx\n",
			r.Processes, bench.Eng(r.Rate()), r.Updates, r.Seconds, r.Rate()/base)
	}
}
