// Command hhgb-fig2 regenerates the paper's Fig. 2: streaming update rate
// as a function of server count for hierarchical GraphBLAS, hierarchical
// D4M, Accumulo D4M, SciDB, Accumulo, CrateDB and Oracle/TPC-C
// (experiments E2–E8).
//
// Every engine is calibrated by a real measured single-process run on this
// machine; the server sweep then applies the paper's shared-nothing
// additivity (processes never communicate) with a documented efficiency
// curve. Output: measured per-process rates, the aggregate-rate table, a
// log-log ASCII rendering of Fig. 2, and optional CSV.
//
// Usage:
//
//	hhgb-fig2 [-edges N] [-seconds S] [-procs-per-server N] [-servers list] [-engines list] [-csv file]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"hhgb/internal/bench"
	"hhgb/internal/cluster"
	"hhgb/internal/powerlaw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hhgb-fig2: ")
	var (
		edges    = flag.Int("edges", 2_000_000, "workload size for calibration (paper: 100,000,000)")
		seconds  = flag.Float64("seconds", 1.0, "minimum calibration time per engine")
		pps      = flag.Int("procs-per-server", cluster.DefaultProcsPerServer, "processes per server (paper: ~28)")
		servers  = flag.String("servers", "", "comma-separated server counts (default: 1,2,4,...,1100)")
		engines  = flag.String("engines", "", "comma-separated engine subset (default: all Fig. 2 engines)")
		csvPath  = flag.String("csv", "", "also write the series as CSV to this file")
		seed     = flag.Uint64("seed", 1, "workload seed")
		plotWide = flag.Int("plot-width", 72, "ASCII plot width")
	)
	flag.Parse()

	cfg := cluster.Fig2Config{
		Stream:             powerlaw.ScaledSpec(*edges, *seed),
		ProcsPerServer:     *pps,
		CalibrationSeconds: *seconds,
	}
	if *servers != "" {
		counts, err := parseInts(*servers)
		if err != nil {
			log.Fatalf("parsing -servers: %v", err)
		}
		cfg.ServerCounts = counts
	}
	if *engines != "" {
		cfg.Engines = strings.Split(*engines, ",")
	}

	fmt.Printf("Fig. 2 reproduction: update rate vs. number of servers\n")
	fmt.Printf("  workload: %d updates in %d sets of %d (R-MAT scale %d)\n",
		cfg.Stream.TotalEdges, cfg.Stream.Sets(), cfg.Stream.SetSize, cfg.Stream.Scale)
	fmt.Printf("  model: aggregate = servers x %d procs x measured rate x n^-0.03\n\n", cfg.ProcsPerServer)

	series, models, err := cluster.Fig2(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("measured single-process rates (this machine):")
	for _, m := range models {
		fmt.Printf("  %-16s %12s updates/s/process\n", m.EngineName, bench.Eng(m.PerProcessRate))
	}
	fmt.Println()

	fmt.Println(bench.FormatTable("servers", series))
	fmt.Println(bench.PlotLogLog(series, *plotWide, 20))

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := bench.WriteCSV(f, "servers", series); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}

	// Paper-vs-model summary at full scale.
	last := cfg.ServerCounts
	if last == nil {
		last = cluster.DefaultServerCounts()
	}
	maxServers := last[len(last)-1]
	for _, s := range series {
		if s.Name == "hier-graphblas" && len(s.Points) > 0 {
			final := s.Points[len(s.Points)-1].Y
			fmt.Printf("\nhier-graphblas at %d servers: %s updates/s (paper: 75G at 1,100 servers)\n",
				maxServers, bench.Eng(final))
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
