// Command hhgb-single measures the single-instance streaming update rate of
// a hierarchical hypersparse GraphBLAS matrix — the paper's ">1,000,000
// updates per second in a single instance" headline (experiment E1).
//
// Usage:
//
//	hhgb-single [-edges N] [-batch N] [-scale S] [-levels N] [-base-cut N] [-ratio N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hhgb/internal/bench"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/powerlaw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hhgb-single: ")
	var (
		edges   = flag.Int("edges", 10_000_000, "total updates to stream")
		batch   = flag.Int("batch", 100_000, "updates per batch (the paper uses 100,000)")
		scale   = flag.Int("scale", 32, "R-MAT scale (2^scale vertices; 32 = IPv4)")
		levels  = flag.Int("levels", hier.DefaultLevels, "cascade levels")
		baseCut = flag.Int("base-cut", hier.DefaultBaseCut, "cut c1 of the lowest level")
		ratio   = flag.Int("ratio", hier.DefaultCutRatio, "geometric cut ratio")
		seed    = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()
	if err := run(*edges, *batch, *scale, *levels, *baseCut, *ratio, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(edges, batch, scale, levels, baseCut, ratio int, seed uint64) error {
	cuts := hier.GeometricCuts(levels, baseCut, ratio)
	dim := gb.Index(1) << uint(scale)
	h, err := hier.New[uint64](dim, dim, hier.Config{Cuts: cuts})
	if err != nil {
		return err
	}
	g, err := powerlaw.NewRMAT(scale, seed)
	if err != nil {
		return err
	}
	rows := make([]gb.Index, batch)
	cols := make([]gb.Index, batch)
	vals := make([]uint64, batch)
	for k := range vals {
		vals[k] = 1
	}

	fmt.Printf("hierarchical hypersparse GraphBLAS single instance\n")
	fmt.Printf("  dimension: 2^%d x 2^%d   levels: %d   cuts: %v\n", scale, scale, levels, cuts)
	fmt.Printf("  stream: %d updates in batches of %d\n\n", edges, batch)

	// The paper's processes stream pre-generated sets, so the update rate
	// is timed separately from set generation.
	var updateSeconds, genSeconds float64
	wall, err := bench.Measure(int64(edges), func() error {
		for done := 0; done < edges; done += batch {
			n := batch
			if edges-done < n {
				n = edges - done
			}
			g0 := time.Now()
			if err := g.Fill(rows[:n], cols[:n]); err != nil {
				return err
			}
			genSeconds += time.Since(g0).Seconds()
			u0 := time.Now()
			if err := h.Update(rows[:n], cols[:n], vals[:n]); err != nil {
				return err
			}
			updateSeconds += time.Since(u0).Seconds()
		}
		return nil
	})
	if err != nil {
		return err
	}
	rate := bench.Rate{Updates: int64(edges), Seconds: updateSeconds}

	fmt.Printf("update rate:      %s\n", rate)
	fmt.Printf("generation rate:  %s updates/s (excluded from headline, %.3fs)\n",
		bench.Eng(float64(edges)/genSeconds), genSeconds)
	fmt.Printf("wall clock:       %s\n\n", wall)
	st := h.Stats()
	fmt.Printf("cascade statistics:\n")
	fmt.Printf("  batches: %d\n", st.Batches)
	for i := 0; i < len(cuts); i++ {
		frac := float64(st.CascadedEntries[i]) / float64(st.Updates)
		fmt.Printf("  level %d -> %d: %6d cascades, %12d entries moved (%.3fx of ingest)\n",
			i+1, i+2, st.Cascades[i], st.CascadedEntries[i], frac)
	}
	lv := h.LevelNVals()
	fmt.Printf("  level occupancy: %v\n", lv)
	n, err := h.NVals()
	if err != nil {
		return err
	}
	fmt.Printf("  distinct entries: %d\n", n)
	if rate.PerSecond() >= 1_000_000 {
		fmt.Printf("\nHEADLINE: >1,000,000 updates/second single instance: ACHIEVED (%s/s)\n", bench.Eng(rate.PerSecond()))
	} else {
		fmt.Printf("\nHEADLINE: >1,000,000 updates/second single instance: not reached (%s/s)\n", bench.Eng(rate.PerSecond()))
		os.Exit(1)
	}
	return nil
}
