// Command hhgb-single measures the single-instance streaming update rate of
// a hierarchical hypersparse GraphBLAS matrix — the paper's ">1,000,000
// updates per second in a single instance" headline (experiment E1).
//
// With -shards > 1 it instead measures the sharded concurrent ingest
// frontend: the same logical matrix hash-partitioned across that many
// cascades, fed by one producer goroutine per shard.
//
// Usage:
//
//	hhgb-single [-edges N] [-batch N] [-scale S] [-levels N] [-base-cut N] [-ratio N] [-shards N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync"
	"time"

	"hhgb/internal/bench"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/powerlaw"
	"hhgb/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hhgb-single: ")
	var (
		edges   = flag.Int("edges", 10_000_000, "total updates to stream")
		batch   = flag.Int("batch", 100_000, "updates per batch (the paper uses 100,000)")
		scale   = flag.Int("scale", 32, "R-MAT scale (2^scale vertices; 32 = IPv4)")
		levels  = flag.Int("levels", hier.DefaultLevels, "cascade levels")
		baseCut = flag.Int("base-cut", hier.DefaultBaseCut, "cut c1 of the lowest level")
		ratio   = flag.Int("ratio", hier.DefaultCutRatio, "geometric cut ratio")
		shards  = flag.Int("shards", 1, "shard count; > 1 selects the concurrent sharded frontend (0 = all cores)")
		seed    = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()
	if *shards < 0 {
		log.Fatalf("-shards %d: shard count must be >= 0 (0 = all cores)", *shards)
	}
	if *shards == 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	var err error
	if *shards > 1 {
		err = runSharded(*edges, *batch, *scale, *levels, *baseCut, *ratio, *shards, *seed)
	} else {
		err = run(*edges, *batch, *scale, *levels, *baseCut, *ratio, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runSharded measures the concurrent frontend: `shards` producer
// goroutines, each cycling a pool of pre-generated batches (generation
// stays outside the measurement, like the paper's pre-generated sets) into
// one hash-partitioned matrix. The measured time covers ingest plus the
// final drain, so every enqueued batch is actually cascaded.
func runSharded(edges, batch, scale, levels, baseCut, ratio, shards int, seed uint64) error {
	cuts := hier.GeometricCuts(levels, baseCut, ratio)
	dim := gb.Index(1) << uint(scale)
	g, err := shard.NewGroup[uint64](dim, dim, shard.Config{
		Shards: shards,
		Hier:   hier.Config{Cuts: cuts},
	})
	if err != nil {
		return err
	}

	const poolPerProducer = 8
	producers := shards
	if edges < producers {
		return fmt.Errorf("-edges %d < -shards %d: need at least one update per producer", edges, producers)
	}
	// Distribute the remainder so no update is silently dropped.
	perProducer := make([]int, producers)
	for p := range perProducer {
		perProducer[p] = edges / producers
		if p < edges%producers {
			perProducer[p]++
		}
	}
	type pool struct {
		rows [][]gb.Index
		cols [][]gb.Index
		vals []uint64
	}
	pools := make([]pool, producers)
	for p := range pools {
		gen, err := powerlaw.NewRMAT(scale, seed+0x9e3779b97f4a7c15*uint64(p+1))
		if err != nil {
			return err
		}
		pools[p].vals = make([]uint64, batch)
		for k := range pools[p].vals {
			pools[p].vals[k] = 1
		}
		for b := 0; b < poolPerProducer; b++ {
			rows := make([]gb.Index, batch)
			cols := make([]gb.Index, batch)
			if err := gen.Fill(rows, cols); err != nil {
				return err
			}
			pools[p].rows = append(pools[p].rows, rows)
			pools[p].cols = append(pools[p].cols, cols)
		}
	}

	fmt.Printf("sharded concurrent ingest frontend\n")
	fmt.Printf("  dimension: 2^%d x 2^%d   shards: %d   levels: %d   cuts: %v\n", scale, scale, shards, levels, cuts)
	fmt.Printf("  stream: %d producers x ~%d updates in batches of %d\n\n", producers, perProducer[0], batch)

	errs := make([]error, producers)
	rate, err := bench.Measure(int64(edges), func() error {
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				po := pools[p]
				for done, b := 0, 0; done < perProducer[p]; done, b = done+batch, b+1 {
					n := batch
					if perProducer[p]-done < n {
						n = perProducer[p] - done
					}
					k := b % poolPerProducer
					if err := g.Update(po.rows[k][:n], po.cols[k][:n], po.vals[:n]); err != nil {
						errs[p] = err
						return
					}
				}
			}(p)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return g.Close() // drain every queue; the rate covers real ingest
	})
	if err != nil {
		return err
	}

	fmt.Printf("aggregate update rate: %s\n\n", rate)
	st := g.Stats()
	fmt.Printf("merged cascade statistics (%d shards):\n", shards)
	fmt.Printf("  batches: %d\n", st.Batches)
	for i := 0; i < len(cuts); i++ {
		frac := float64(st.CascadedEntries[i]) / float64(st.Updates)
		fmt.Printf("  level %d -> %d: %6d cascades, %12d entries moved (%.3fx of ingest)\n",
			i+1, i+2, st.Cascades[i], st.CascadedEntries[i], frac)
	}
	fmt.Printf("  level occupancy: %v\n", g.LevelNVals())
	n, err := g.NVals()
	if err != nil {
		return err
	}
	fmt.Printf("  distinct entries: %d\n", n)
	perShard := g.ShardStats()
	min, max := perShard[0].Updates, perShard[0].Updates
	for _, s := range perShard[1:] {
		if s.Updates < min {
			min = s.Updates
		}
		if s.Updates > max {
			max = s.Updates
		}
	}
	fmt.Printf("  shard balance: min %d / max %d updates per shard (%.3f)\n",
		min, max, float64(min)/float64(max))
	return nil
}

func run(edges, batch, scale, levels, baseCut, ratio int, seed uint64) error {
	cuts := hier.GeometricCuts(levels, baseCut, ratio)
	dim := gb.Index(1) << uint(scale)
	h, err := hier.New[uint64](dim, dim, hier.Config{Cuts: cuts})
	if err != nil {
		return err
	}
	g, err := powerlaw.NewRMAT(scale, seed)
	if err != nil {
		return err
	}
	rows := make([]gb.Index, batch)
	cols := make([]gb.Index, batch)
	vals := make([]uint64, batch)
	for k := range vals {
		vals[k] = 1
	}

	fmt.Printf("hierarchical hypersparse GraphBLAS single instance\n")
	fmt.Printf("  dimension: 2^%d x 2^%d   levels: %d   cuts: %v\n", scale, scale, levels, cuts)
	fmt.Printf("  stream: %d updates in batches of %d\n\n", edges, batch)

	// The paper's processes stream pre-generated sets, so the update rate
	// is timed separately from set generation.
	var updateSeconds, genSeconds float64
	wall, err := bench.Measure(int64(edges), func() error {
		for done := 0; done < edges; done += batch {
			n := batch
			if edges-done < n {
				n = edges - done
			}
			g0 := time.Now()
			if err := g.Fill(rows[:n], cols[:n]); err != nil {
				return err
			}
			genSeconds += time.Since(g0).Seconds()
			u0 := time.Now()
			if err := h.Update(rows[:n], cols[:n], vals[:n]); err != nil {
				return err
			}
			updateSeconds += time.Since(u0).Seconds()
		}
		return nil
	})
	if err != nil {
		return err
	}
	rate := bench.Rate{Updates: int64(edges), Seconds: updateSeconds}

	fmt.Printf("update rate:      %s\n", rate)
	fmt.Printf("generation rate:  %s updates/s (excluded from headline, %.3fs)\n",
		bench.Eng(float64(edges)/genSeconds), genSeconds)
	fmt.Printf("wall clock:       %s\n\n", wall)
	st := h.Stats()
	fmt.Printf("cascade statistics:\n")
	fmt.Printf("  batches: %d\n", st.Batches)
	for i := 0; i < len(cuts); i++ {
		frac := float64(st.CascadedEntries[i]) / float64(st.Updates)
		fmt.Printf("  level %d -> %d: %6d cascades, %12d entries moved (%.3fx of ingest)\n",
			i+1, i+2, st.Cascades[i], st.CascadedEntries[i], frac)
	}
	lv := h.LevelNVals()
	fmt.Printf("  level occupancy: %v\n", lv)
	n, err := h.NVals()
	if err != nil {
		return err
	}
	fmt.Printf("  distinct entries: %d\n", n)
	if rate.PerSecond() >= 1_000_000 {
		fmt.Printf("\nHEADLINE: >1,000,000 updates/second single instance: ACHIEVED (%s/s)\n", bench.Eng(rate.PerSecond()))
	} else {
		fmt.Printf("\nHEADLINE: >1,000,000 updates/second single instance: not reached (%s/s)\n", bench.Eng(rate.PerSecond()))
		os.Exit(1)
	}
	return nil
}
