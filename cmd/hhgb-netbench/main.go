// Command hhgb-netbench measures the network ingest service on loopback:
// aggregate inserts/second against connection count, for single-entry
// frames (the unbatched baseline) versus batched frames. Each sweep point
// runs a fresh matrix + server + clients in this process, so points are
// comparable and the whole bench needs no setup.
//
// Usage:
//
//	hhgb-netbench [-edges N] [-single-edges N] [-scale S] [-shards N]
//	              [-conns 1,2,4] [-batch 4096] [-seed N] [-out BENCH_net.json]
//
// It writes the bench.Trajectory artifact BENCH_net.json (uploaded by
// CI's bench-smoke job) with one point per (mode, conns) pair; batched
// points carry the speedup over the single-frame point at the same
// connection count in their extras. The paper's aggregate-rate framing
// (inserts/s vs producers) maps directly: connections are the network
// analogue of ingest processes.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"hhgb"
	"hhgb/hhgbclient"
	"hhgb/internal/bench"
	"hhgb/internal/powerlaw"
	"hhgb/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hhgb-netbench: ")
	var (
		edges       = flag.Int("edges", 1_000_000, "edges per batched sweep point")
		singleEdges = flag.Int("single-edges", 0, "edges per single-frame point (0 = edges/10; single frames are ~10x slower)")
		scale       = flag.Int("scale", 24, "matrix dimension is 2^scale")
		shards      = flag.Int("shards", 0, "server shard count (0 = GOMAXPROCS)")
		connsFlag   = flag.String("conns", "1,2,4", "comma-separated connection counts to sweep")
		batch       = flag.Int("batch", 4096, "entries per insert frame in batched mode")
		seed        = flag.Uint64("seed", 1, "workload seed")
		out         = flag.String("out", "BENCH_net.json", "trajectory output file")
	)
	flag.Parse()
	if *singleEdges <= 0 {
		*singleEdges = *edges / 10
		if *singleEdges < 1 {
			*singleEdges = 1
		}
	}
	connCounts, err := parseConns(*connsFlag)
	if err != nil {
		log.Fatal(err)
	}
	if err := run(*edges, *singleEdges, *scale, *shards, connCounts, *batch, *seed, *out); err != nil {
		log.Fatal(err)
	}
}

func parseConns(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -conns entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(edges, singleEdges, scale, shards int, connCounts []int, batch int, seed uint64, out string) error {
	traj := bench.NewTrajectory("net", "inserts/s")
	traj.Meta = map[string]string{
		"edges":        fmt.Sprint(edges),
		"single_edges": fmt.Sprint(singleEdges),
		"scale":        fmt.Sprint(scale),
		"batch":        fmt.Sprint(batch),
	}
	singleRates := make(map[int]float64)
	for _, mode := range []string{"single", "batched"} {
		for _, conns := range connCounts {
			e, frame := edges, batch
			if mode == "single" {
				e, frame = singleEdges, 1
			}
			rate, err := point(e, scale, shards, conns, frame, seed)
			if err != nil {
				return fmt.Errorf("%s/conns=%d: %w", mode, conns, err)
			}
			extra := map[string]float64{"edges": float64(e), "frame_entries": float64(frame)}
			if mode == "single" {
				singleRates[conns] = rate
			} else if s, ok := singleRates[conns]; ok && s > 0 {
				extra["speedup_vs_single"] = rate / s
			}
			label := fmt.Sprintf("%s/conns=%d", mode, conns)
			traj.AddPoint(label, float64(conns), rate, extra)
			log.Printf("%-18s %12.0f inserts/s", label, rate)
		}
	}
	if err := traj.WriteFile(out); err != nil {
		return err
	}
	log.Printf("wrote %s (%d points)", out, len(traj.Points))
	return nil
}

// point measures one (conns, frame size) configuration end to end: fresh
// matrix, fresh server, conns concurrent clients streaming edges/conns
// each, timed through the final Flush (so queued work cannot inflate the
// rate), then verified against the server's entry count.
func point(edges, scale, shards, conns, frame int, seed uint64) (float64, error) {
	var opts []hhgb.Option
	if shards > 0 {
		opts = append(opts, hhgb.WithShards(shards))
	}
	m, err := hhgb.NewSharded(uint64(1)<<uint(scale), opts...)
	if err != nil {
		return 0, err
	}
	defer m.Close()
	srv, err := server.New(server.Config{Matrix: m})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	per := edges / conns
	if per < 1 {
		per = 1
	}
	// Pre-generate every connection's stream so the timed window measures
	// the wire and ingest path, not the edge generator (the convention of
	// the in-process benchmarks, bench_test.go).
	srcs := make([][]uint64, conns)
	dsts := make([][]uint64, conns)
	for i := range srcs {
		g, err := powerlaw.NewRMAT(scale, seed+uint64(i)*0x9e3779b9)
		if err != nil {
			return 0, err
		}
		srcs[i] = make([]uint64, per)
		dsts[i] = make([]uint64, per)
		for k := 0; k < per; k++ {
			e := g.Edge()
			srcs[i][k], dsts[i][k] = e.Row, e.Col
		}
	}
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := hhgbclient.Dial(addr,
				hhgbclient.WithFlushEntries(frame),
				hhgbclient.WithFlushInterval(0),
				hhgbclient.WithMaxPending(1024))
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			src, dst := srcs[i], dsts[i]
			if frame == 1 {
				// Single-frame mode: one Append per entry, so every
				// entry pays the full frame + write cost — the honest
				// unbatched baseline.
				for k := 0; k < per; k++ {
					if err := c.Append(src[k:k+1], dst[k:k+1]); err != nil {
						fail(err)
						return
					}
				}
			} else {
				for k := 0; k < per; k += frame {
					end := k + frame
					if end > per {
						end = per
					}
					if err := c.Append(src[k:end], dst[k:end]); err != nil {
						fail(err)
						return
					}
				}
			}
			if err := c.Flush(); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	if first != nil {
		return 0, first
	}
	elapsed := time.Since(start)
	// The cross-check behind the number: every streamed entry had weight
	// 1, so the matrix's packet total must equal the insert count — a
	// wire path that dropped or duplicated frames would fail here, not
	// emit a plausible artifact.
	sum, err := m.Summary()
	if err != nil {
		return 0, err
	}
	if want := uint64(per * conns); sum.TotalPackets != want {
		return 0, fmt.Errorf("server holds %d packets after %d acked inserts", sum.TotalPackets, want)
	}
	return float64(per*conns) / elapsed.Seconds(), nil
}
