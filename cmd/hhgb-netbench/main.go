// Command hhgb-netbench measures the network ingest service on loopback:
// aggregate inserts/second against connection count, for single-entry
// frames (the unbatched baseline) versus batched frames. Each sweep point
// runs a fresh matrix + server + clients in this process, so points are
// comparable and the whole bench needs no setup.
//
// Usage:
//
//	hhgb-netbench [-edges N] [-single-edges N] [-scale S] [-shards N]
//	              [-conns 1,2,4] [-batch 4096] [-seed N] [-out BENCH_net.json]
//
// It writes the bench.Trajectory artifact BENCH_net.json (uploaded by
// CI's bench-smoke job) with one point per (mode, conns) pair; batched
// points carry the speedup over the single-frame point at the same
// connection count in their extras. The paper's aggregate-rate framing
// (inserts/s vs producers) maps directly: connections are the network
// analogue of ingest processes.
//
// Unless -latency-out is empty, a second sweep traces every insert frame
// (server-side span sampling at rate 1) against a durable sessioned
// server and writes BENCH_latency.json: per pipeline stage (decode,
// queue, partition, ack, shard_wait, wal, apply, total) and connection
// count, the p50 and p99 frame latency from the
// hhgb_server_ingest_stage_seconds histograms.
//
// Unless -query-out is empty, a third sweep measures the read path
// against a windowed server spanning every query: after seeding a
// multi-window store, one client drives -queries round trips of each
// read op (lookup, top-k, summary, and their range forms) and
// BENCH_query.json reports per-op client-observed rate with p50/p99
// extras, plus the server-side per-stage quantiles from the
// hhgb_query_stage_seconds histograms.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hhgb"
	"hhgb/hhgbclient"
	"hhgb/internal/bench"
	"hhgb/internal/flight"
	"hhgb/internal/powerlaw"
	"hhgb/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hhgb-netbench: ")
	var (
		edges       = flag.Int("edges", 1_000_000, "edges per batched sweep point")
		singleEdges = flag.Int("single-edges", 0, "edges per single-frame point (0 = edges/10; single frames are ~10x slower)")
		scale       = flag.Int("scale", 24, "matrix dimension is 2^scale")
		shards      = flag.Int("shards", 0, "server shard count (0 = GOMAXPROCS)")
		connsFlag   = flag.String("conns", "1,2,4", "comma-separated connection counts to sweep")
		batch       = flag.Int("batch", 4096, "entries per insert frame in batched mode")
		seed        = flag.Uint64("seed", 1, "workload seed")
		out         = flag.String("out", "BENCH_net.json", "trajectory output file")
		latencyOut  = flag.String("latency-out", "BENCH_latency.json", "per-stage latency trajectory output (empty = skip the latency sweep)")
		queryOut    = flag.String("query-out", "BENCH_query.json", "read-path latency trajectory output (empty = skip the query sweep)")
		queries     = flag.Int("queries", 200, "round trips per read-op kind in the query sweep")
	)
	flag.Parse()
	if *singleEdges <= 0 {
		*singleEdges = *edges / 10
		if *singleEdges < 1 {
			*singleEdges = 1
		}
	}
	connCounts, err := parseConns(*connsFlag)
	if err != nil {
		log.Fatal(err)
	}
	if err := run(*edges, *singleEdges, *scale, *shards, connCounts, *batch, *seed, *out, *latencyOut, *queryOut, *queries); err != nil {
		log.Fatal(err)
	}
}

func parseConns(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -conns entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(edges, singleEdges, scale, shards int, connCounts []int, batch int, seed uint64, out, latencyOut, queryOut string, queries int) error {
	traj := bench.NewTrajectory("net", "inserts/s")
	traj.Meta = map[string]string{
		"edges":        fmt.Sprint(edges),
		"single_edges": fmt.Sprint(singleEdges),
		"scale":        fmt.Sprint(scale),
		"batch":        fmt.Sprint(batch),
	}
	singleRates := make(map[int]float64)
	for _, mode := range []string{"single", "batched"} {
		for _, conns := range connCounts {
			e, frame := edges, batch
			if mode == "single" {
				e, frame = singleEdges, 1
			}
			rate, err := point(e, scale, shards, conns, frame, seed)
			if err != nil {
				return fmt.Errorf("%s/conns=%d: %w", mode, conns, err)
			}
			extra := map[string]float64{"edges": float64(e), "frame_entries": float64(frame)}
			if mode == "single" {
				singleRates[conns] = rate
			} else if s, ok := singleRates[conns]; ok && s > 0 {
				extra["speedup_vs_single"] = rate / s
			}
			label := fmt.Sprintf("%s/conns=%d", mode, conns)
			traj.AddPoint(label, float64(conns), rate, extra)
			log.Printf("%-18s %12.0f inserts/s", label, rate)
		}
	}
	if err := traj.WriteFile(out); err != nil {
		return err
	}
	log.Printf("wrote %s (%d points)", out, len(traj.Points))
	if latencyOut != "" {
		if err := latencySweep(singleEdges, scale, shards, connCounts, batch, seed, latencyOut); err != nil {
			return fmt.Errorf("latency sweep: %w", err)
		}
	}
	if queryOut != "" {
		if err := querySweep(singleEdges, scale, shards, queries, seed, queryOut); err != nil {
			return fmt.Errorf("query sweep: %w", err)
		}
	}
	return nil
}

// querySweep measures the read path end to end: a windowed server with
// every query spanned (a 1ns SlowQuery threshold turns the query tracer
// on; no flight ring is attached, so nothing is recorded), seeded with
// edges spread across eight level-0 windows, then one client driving a
// fixed mix of read ops. Per op kind the artifact reports the
// client-observed rate with p50/p99 round-trip extras; per query stage
// it reports the server-side quantiles from hhgb_query_stage_seconds —
// so the artifact shows both what a caller waits and where the server
// spends it.
func querySweep(edges, scale, shards, queries int, seed uint64, out string) error {
	const windows = 8
	traj := bench.NewTrajectory("net_query", "queries/s")
	traj.Meta = map[string]string{
		"edges":   fmt.Sprint(edges),
		"scale":   fmt.Sprint(scale),
		"queries": fmt.Sprint(queries),
		"windows": fmt.Sprint(windows),
	}
	opts := []hhgb.Option{hhgb.WithLateness(time.Hour)}
	if shards > 0 {
		opts = append(opts, hhgb.WithShards(shards))
	}
	wm, err := hhgb.NewWindowed(uint64(1)<<uint(scale), time.Second, opts...)
	if err != nil {
		return err
	}
	defer wm.Close()
	reg := hhgb.NewMetrics()
	srv, err := server.New(server.Config{
		Windowed:  wm,
		Metrics:   reg,
		SlowQuery: time.Nanosecond,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)

	c, err := hhgbclient.Dial(ln.Addr().String(),
		hhgbclient.WithFlushInterval(0),
		hhgbclient.WithMaxPending(1024))
	if err != nil {
		return err
	}
	defer c.Close()

	// Seed the store: edges/windows per window, contiguous event times.
	base := time.Unix(1_700_000_000, 0)
	g, err := powerlaw.NewRMAT(scale, seed)
	if err != nil {
		return err
	}
	per := edges / windows
	if per < 1 {
		per = 1
	}
	probe := g.Edge() // the pair the lookup ops probe; it is in window 0
	for w := 0; w < windows; w++ {
		src := make([]uint64, per)
		dst := make([]uint64, per)
		for k := range src {
			e := g.Edge()
			src[k], dst[k] = e.Row, e.Col
		}
		if w == 0 {
			src[0], dst[0] = probe.Row, probe.Col
		}
		if err := c.AppendAt(base.Add(time.Duration(w)*time.Second), src, dst); err != nil {
			return err
		}
	}
	if err := c.Flush(); err != nil {
		return err
	}

	t0 := base
	tHalf := base.Add(windows / 2 * time.Second)
	ops := []struct {
		name string
		fn   func() error
	}{
		{"lookup", func() error { _, _, err := c.Lookup(probe.Row, probe.Col); return err }},
		{"range_lookup", func() error { _, _, err := c.RangeLookup(probe.Row, probe.Col, t0, tHalf); return err }},
		{"topk", func() error { _, err := c.TopSources(10); return err }},
		{"range_topk", func() error { _, err := c.RangeTopSources(10, t0, tHalf); return err }},
		{"summary", func() error { _, err := c.Summary(); return err }},
		{"range_summary", func() error { _, err := c.RangeSummary(t0, tHalf); return err }},
	}
	for i, op := range ops {
		for w := 0; w < 5; w++ { // warm the pushdown caches and the path
			if err := op.fn(); err != nil {
				return fmt.Errorf("%s: %w", op.name, err)
			}
		}
		durs := make([]time.Duration, queries)
		total := time.Duration(0)
		for q := range durs {
			t := time.Now()
			if err := op.fn(); err != nil {
				return fmt.Errorf("%s: %w", op.name, err)
			}
			durs[q] = time.Since(t)
			total += durs[q]
		}
		sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
		p50 := durs[len(durs)/2].Seconds()
		p99 := durs[len(durs)*99/100].Seconds()
		rate := float64(queries) / total.Seconds()
		traj.AddPoint("op/"+op.name, float64(i), rate, map[string]float64{
			"p50":     p50,
			"p99":     p99,
			"queries": float64(queries),
		})
		log.Printf("%-20s %9.0f queries/s  p50 %8.1fus  p99 %8.1fus",
			"op/"+op.name, rate, p50*1e6, p99*1e6)
	}

	// The server-side decomposition of the same traffic: where the time
	// went, stage by stage. RegisterQueryStageHistograms dedups against
	// the server's own registration, so this reads the very series the
	// spans observed.
	for i, h := range flight.RegisterQueryStageHistograms(reg) {
		name := flight.QStage(i).String()
		traj.AddPoint("stage/"+name, float64(i), h.Quantile(0.99), map[string]float64{
			"p50":     h.Quantile(0.5),
			"queries": float64(h.Count()),
		})
	}
	if err := traj.WriteFile(out); err != nil {
		return err
	}
	log.Printf("wrote %s (%d points)", out, len(traj.Points))
	return nil
}

// latencySweep measures where ingest latency goes: a durable sessioned
// server traces EVERY insert frame (sample rate 1) into the per-stage
// histograms, and the artifact reports each stage's p50/p99 per
// connection count. Durability is on so the wal stage is real; edge
// counts follow the single-frame budget — quantiles need thousands of
// frames, not millions of edges.
func latencySweep(edges, scale, shards int, connCounts []int, batch int, seed uint64, out string) error {
	traj := bench.NewTrajectory("net_latency", "seconds")
	traj.Meta = map[string]string{
		"edges": fmt.Sprint(edges),
		"scale": fmt.Sprint(scale),
		"batch": fmt.Sprint(batch),
	}
	for _, conns := range connCounts {
		stages, err := latencyPoint(edges, scale, shards, conns, batch, seed)
		if err != nil {
			return fmt.Errorf("conns=%d: %w", conns, err)
		}
		for _, st := range stages {
			label := fmt.Sprintf("%s/conns=%d", st.name, conns)
			traj.AddPoint(label, float64(conns), st.p99, map[string]float64{
				"p50":    st.p50,
				"frames": float64(st.count),
			})
			log.Printf("%-22s p50 %9.1fus  p99 %9.1fus  (%d frames)",
				label, st.p50*1e6, st.p99*1e6, st.count)
		}
	}
	if err := traj.WriteFile(out); err != nil {
		return err
	}
	log.Printf("wrote %s (%d points)", out, len(traj.Points))
	return nil
}

// stageStat is one stage's latency distribution summary.
type stageStat struct {
	name     string
	p50, p99 float64
	count    uint64
}

// latencyPoint runs one traced configuration: a durable server sampling
// every insert frame, conns sessioned clients streaming batched frames,
// then the stage histograms' quantiles. Small frames (batch/4, min 64)
// keep the frame count high enough for stable tails.
func latencyPoint(edges, scale, shards, conns, batch int, seed uint64) ([]stageStat, error) {
	dir, err := os.MkdirTemp("", "hhgb-netbench-lat-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	frame := batch / 4
	if frame < 64 {
		frame = 64
	}
	opts := []hhgb.Option{hhgb.WithDurability(dir)}
	if shards > 0 {
		opts = append(opts, hhgb.WithShards(shards))
	}
	m, err := hhgb.NewSharded(uint64(1)<<uint(scale), opts...)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	reg := hhgb.NewMetrics()
	srv, err := server.New(server.Config{
		Matrix:      m,
		Metrics:     reg,
		TraceSample: 1,  // every frame: quantiles want the full population
		SlowFrame:   -1, // histograms only; no ring in this process
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	per := edges / conns
	if per < 1 {
		per = 1
	}
	srcs := make([][]uint64, conns)
	dsts := make([][]uint64, conns)
	for i := range srcs {
		g, err := powerlaw.NewRMAT(scale, seed+uint64(i)*0x9e3779b9)
		if err != nil {
			return nil, err
		}
		srcs[i] = make([]uint64, per)
		dsts[i] = make([]uint64, per)
		for k := 0; k < per; k++ {
			e := g.Edge()
			srcs[i][k], dsts[i][k] = e.Row, e.Col
		}
	}
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
	}
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := hhgbclient.Dial(addr,
				hhgbclient.WithSession(fmt.Sprintf("netbench-lat-%d", i)),
				hhgbclient.WithFlushEntries(frame),
				hhgbclient.WithFlushInterval(0),
				hhgbclient.WithMaxPending(1024))
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			src, dst := srcs[i], dsts[i]
			for k := 0; k < per; k += frame {
				end := k + frame
				if end > per {
					end = per
				}
				if err := c.Append(src[k:end], dst[k:end]); err != nil {
					fail(err)
					return
				}
			}
			if err := c.Flush(); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	// RegisterStageHistograms dedups against the server's own
	// registration, so this fetches the very series the spans observed.
	hists := flight.RegisterStageHistograms(reg)
	stats := make([]stageStat, 0, len(hists))
	for i, h := range hists {
		stats = append(stats, stageStat{
			name:  flight.Stage(i).String(),
			p50:   h.Quantile(0.5),
			p99:   h.Quantile(0.99),
			count: h.Count(),
		})
	}
	return stats, nil
}

// point measures one (conns, frame size) configuration end to end: fresh
// matrix, fresh server, conns concurrent clients streaming edges/conns
// each, timed through the final Flush (so queued work cannot inflate the
// rate), then verified against the server's entry count.
func point(edges, scale, shards, conns, frame int, seed uint64) (float64, error) {
	var opts []hhgb.Option
	if shards > 0 {
		opts = append(opts, hhgb.WithShards(shards))
	}
	m, err := hhgb.NewSharded(uint64(1)<<uint(scale), opts...)
	if err != nil {
		return 0, err
	}
	defer m.Close()
	srv, err := server.New(server.Config{Matrix: m})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	per := edges / conns
	if per < 1 {
		per = 1
	}
	// Pre-generate every connection's stream so the timed window measures
	// the wire and ingest path, not the edge generator (the convention of
	// the in-process benchmarks, bench_test.go).
	srcs := make([][]uint64, conns)
	dsts := make([][]uint64, conns)
	for i := range srcs {
		g, err := powerlaw.NewRMAT(scale, seed+uint64(i)*0x9e3779b9)
		if err != nil {
			return 0, err
		}
		srcs[i] = make([]uint64, per)
		dsts[i] = make([]uint64, per)
		for k := 0; k < per; k++ {
			e := g.Edge()
			srcs[i][k], dsts[i][k] = e.Row, e.Col
		}
	}
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := hhgbclient.Dial(addr,
				hhgbclient.WithFlushEntries(frame),
				hhgbclient.WithFlushInterval(0),
				hhgbclient.WithMaxPending(1024))
			if err != nil {
				fail(err)
				return
			}
			defer c.Close()
			src, dst := srcs[i], dsts[i]
			if frame == 1 {
				// Single-frame mode: one Append per entry, so every
				// entry pays the full frame + write cost — the honest
				// unbatched baseline.
				for k := 0; k < per; k++ {
					if err := c.Append(src[k:k+1], dst[k:k+1]); err != nil {
						fail(err)
						return
					}
				}
			} else {
				for k := 0; k < per; k += frame {
					end := k + frame
					if end > per {
						end = per
					}
					if err := c.Append(src[k:end], dst[k:end]); err != nil {
						fail(err)
						return
					}
				}
			}
			if err := c.Flush(); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	if first != nil {
		return 0, first
	}
	elapsed := time.Since(start)
	// The cross-check behind the number: every streamed entry had weight
	// 1, so the matrix's packet total must equal the insert count — a
	// wire path that dropped or duplicated frames would fail here, not
	// emit a plausible artifact.
	sum, err := m.Summary()
	if err != nil {
		return 0, err
	}
	if want := uint64(per * conns); sum.TotalPackets != want {
		return 0, fmt.Errorf("server holds %d packets after %d acked inserts", sum.TotalPackets, want)
	}
	return float64(per*conns) / elapsed.Seconds(), nil
}
