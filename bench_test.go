// Benchmarks regenerating the paper's quantitative results, one benchmark
// (family) per experiment in DESIGN.md's per-experiment index. Rates are
// reported as the custom metric "updates/s"; EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkE1 -benchmem
package hhgb

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"hhgb/internal/baselines"
	"hhgb/internal/cluster"
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/memsim"
	"hhgb/internal/powerlaw"
)

// benchBatch is the per-iteration batch size for the engine benchmarks:
// large enough to amortize batch overheads, small enough that slow engines
// finish their minimum iterations quickly.
const benchBatch = 10_000

// prepBatches pre-generates n distinct batches so generation cost never
// pollutes an engine measurement; iterations cycle through them.
func prepBatches(b *testing.B, n int) [][]baselines.Edge {
	b.Helper()
	g, err := powerlaw.NewRMAT(26, 0xbe9c)
	if err != nil {
		b.Fatal(err)
	}
	out := make([][]baselines.Edge, n)
	for k := range out {
		out[k] = g.Edges(benchBatch)
	}
	return out
}

// benchEngine streams pre-generated batches through a fresh engine and
// reports updates/s.
func benchEngine(b *testing.B, factory baselines.Factory) {
	b.Helper()
	batches := prepBatches(b, 64)
	e, err := factory()
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Ingest(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*benchBatch/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkE1_SingleInstance is experiment E1: the single-instance update
// rate of the hierarchical hypersparse GraphBLAS matrix with the paper's
// batch size of 100,000. The paper reports > 1,000,000 updates/s.
func BenchmarkE1_SingleInstance(b *testing.B) {
	const batch = 100_000
	g, err := powerlaw.NewRMAT(32, 1)
	if err != nil {
		b.Fatal(err)
	}
	// Pre-generate a pool of full-size batches to cycle through.
	const pool = 16
	rows := make([][]gb.Index, pool)
	cols := make([][]gb.Index, pool)
	vals := make([]uint64, batch)
	for k := range vals {
		vals[k] = 1
	}
	for p := 0; p < pool; p++ {
		rows[p] = make([]gb.Index, batch)
		cols[p] = make([]gb.Index, batch)
		if err := g.Fill(rows[p], cols[p]); err != nil {
			b.Fatal(err)
		}
	}
	h, err := hier.New[uint64](1<<32, 1<<32, hier.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := i % pool
		if err := h.Update(rows[p], cols[p], vals); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkE2_Fig2_HierGraphBLAS … BenchmarkE8_Fig2_TPCC are experiments
// E2–E8: the single-process ingest rates that calibrate each Fig. 2 curve.
// The full sweep (aggregate rate vs. servers) is cmd/hhgb-fig2.

func BenchmarkE2_Fig2_HierGraphBLAS(b *testing.B) {
	benchEngine(b, func() (baselines.Engine, error) { return baselines.NewHierGraphBLAS(1<<32, nil) })
}

func BenchmarkE3_Fig2_HierD4M(b *testing.B) {
	benchEngine(b, func() (baselines.Engine, error) { return baselines.NewHierD4M(nil) })
}

func BenchmarkE4_Fig2_AccumuloD4M(b *testing.B) {
	benchEngine(b, func() (baselines.Engine, error) { return baselines.NewAccumuloD4M(baselines.DefaultAccumuloConfig()) })
}

func BenchmarkE5_Fig2_SciDB(b *testing.B) {
	benchEngine(b, func() (baselines.Engine, error) { return baselines.NewSciDB(baselines.DefaultSciDBConfig()) })
}

func BenchmarkE6_Fig2_Accumulo(b *testing.B) {
	benchEngine(b, func() (baselines.Engine, error) { return baselines.NewAccumulo(baselines.DefaultAccumuloConfig()) })
}

func BenchmarkE7_Fig2_CrateDB(b *testing.B) {
	benchEngine(b, func() (baselines.Engine, error) { return baselines.NewCrateDB(baselines.DefaultCrateDBConfig()) })
}

func BenchmarkE8_Fig2_TPCC(b *testing.B) {
	benchEngine(b, func() (baselines.Engine, error) { return baselines.NewTPCC(baselines.DefaultTPCCConfig()) })
}

// BenchmarkE9_CutSweep is experiment E9: update rate across the cut tuning
// family (base cut, level count), the paper's tunability claim. The full
// sweep is cmd/hhgb-tune.
func BenchmarkE9_CutSweep(b *testing.B) {
	for _, base := range []int{1 << 10, 1 << 14, 1 << 18} {
		for _, levels := range []int{2, 4, 6} {
			name := fmt.Sprintf("levels=%d/c1=%d", levels, base)
			cuts := hier.GeometricCuts(levels, base, 16)
			b.Run(name, func(b *testing.B) {
				benchEngine(b, func() (baselines.Engine, error) {
					return baselines.NewHierGraphBLAS(1<<32, cuts)
				})
			})
		}
	}
}

// BenchmarkE10_MemoryPressure is experiment E10: simulated memory-system
// cycles per update for flat vs hierarchical ingest address patterns,
// through the cache-hierarchy simulator. The "cycles/update" metric is the
// paper's Fig. 1 argument made quantitative.
func BenchmarkE10_MemoryPressure(b *testing.B) {
	const updates = 50_000
	const batch = 100
	run := func(b *testing.B, f func(h *memsim.Hierarchy) (memsim.IngestCost, error)) {
		var last memsim.IngestCost
		for i := 0; i < b.N; i++ {
			h := memsim.Default()
			cost, err := f(h)
			if err != nil {
				b.Fatal(err)
			}
			last = cost
		}
		b.ReportMetric(last.CyclesPerEntry, "simcycles/update")
	}
	b.Run("flat", func(b *testing.B) {
		run(b, func(h *memsim.Hierarchy) (memsim.IngestCost, error) {
			return memsim.SimulateFlatIngest(h, updates, batch, 1<<30, 7)
		})
	})
	b.Run("hier", func(b *testing.B) {
		run(b, func(h *memsim.Hierarchy) (memsim.IngestCost, error) {
			return memsim.SimulateHierIngest(h, updates, batch, []int{2048, 32768}, 1<<30, 7)
		})
	})
}

// BenchmarkE11_FlatVsHier is experiment E11: the same stream through the
// hierarchical matrix and through a flat hypersparse matrix that
// materializes every batch — the ablation isolating the hierarchy's
// contribution on real hardware.
func BenchmarkE11_FlatVsHier(b *testing.B) {
	b.Run("hier", func(b *testing.B) {
		benchEngine(b, func() (baselines.Engine, error) { return baselines.NewHierGraphBLAS(1<<32, nil) })
	})
	b.Run("flat", func(b *testing.B) {
		benchEngine(b, func() (baselines.Engine, error) { return baselines.NewFlatGraphBLAS(1 << 32) })
	})
}

// BenchmarkE13_ShardedVsFlat compares the concurrent sharded ingest
// frontend against the flat (single-cascade, single-goroutine) path on the
// same pre-generated stream. The flat case is the E1 configuration; the
// sharded cases hash-partition one logical matrix across S cascades and
// feed it from GOMAXPROCS producer goroutines — "sharded-N" through the
// pooled Update path, "append-N" through per-producer Appenders (each
// parallel worker owns its shard buffers, the zero-contention fast path).
// Timing includes the final drain (Close), so queued or buffered batches
// cannot inflate the rate.
//
// The >= 2x speedup expectation holds only where the parallelism exists
// to pay for it: on runtime.NumCPU() >= 4 hosts the shards=4 (and higher)
// rows are asserted to beat the flat rate 2x (on measured runs — the CI
// -benchtime=1x smoke is below the measurement floor and skips the
// check); on smaller hosts the ratio is logged instead, since sharding
// there can only win what producer/consumer pipelining buys (~1.1-1.4x
// on the 1-core dev container).
func BenchmarkE13_ShardedVsFlat(b *testing.B) {
	const batch = 10_000
	// e13MinMeasured: below this elapsed time a ratio is noise, not a
	// measurement (the -benchtime=1x CI smoke lands here).
	const e13MinMeasured = 200 * time.Millisecond
	var flatRate float64
	prep := func(b *testing.B, seed uint64) ([][]gb.Index, [][]gb.Index, []uint64) {
		b.Helper()
		g, err := powerlaw.NewRMAT(32, seed)
		if err != nil {
			b.Fatal(err)
		}
		const pool = 16
		rows := make([][]gb.Index, pool)
		cols := make([][]gb.Index, pool)
		vals := make([]uint64, batch)
		for k := range vals {
			vals[k] = 1
		}
		for p := 0; p < pool; p++ {
			rows[p] = make([]gb.Index, batch)
			cols[p] = make([]gb.Index, batch)
			if err := g.Fill(rows[p], cols[p]); err != nil {
				b.Fatal(err)
			}
		}
		return rows, cols, vals
	}

	b.Run("flat", func(b *testing.B) {
		rows, cols, vals := prep(b, 0xe13)
		h, err := hier.New[uint64](1<<32, 1<<32, hier.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := h.Update(rows[i%len(rows)], cols[i%len(cols)], vals); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := h.Flush(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		rate := float64(b.N) * batch / b.Elapsed().Seconds()
		if b.Elapsed() >= e13MinMeasured {
			flatRate = rate
		}
		b.ReportMetric(rate, "updates/s")
	})

	shardedCase := func(shards int, useAppenders bool) func(b *testing.B) {
		return func(b *testing.B) {
			rows, cols, vals := prep(b, 0xe13)
			sm, err := NewSharded(1<<32, WithShards(shards))
			if err != nil {
				b.Fatal(err)
			}
			uRows := make([][]uint64, len(rows))
			uCols := make([][]uint64, len(cols))
			for p := range rows {
				uRows[p] = make([]uint64, batch)
				uCols[p] = make([]uint64, batch)
				for k := 0; k < batch; k++ {
					uRows[p][k] = uint64(rows[p][k])
					uCols[p][k] = uint64(cols[p][k])
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				push := sm.UpdateWeighted
				if useAppenders {
					a, err := sm.NewAppender()
					if err != nil {
						b.Error(err)
						return
					}
					push = a.AppendWeighted
				}
				k := 0
				for pb.Next() {
					p := k % len(uRows)
					if err := push(uRows[p], uCols[p], vals); err != nil {
						b.Error(err)
						return
					}
					k++
				}
			})
			if err := sm.Close(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			rate := float64(b.N) * batch / b.Elapsed().Seconds()
			b.ReportMetric(rate, "updates/s")
			if flatRate > 0 && b.Elapsed() >= e13MinMeasured {
				ratio := rate / flatRate
				switch {
				case shards >= 4 && runtime.NumCPU() >= 4 && ratio < 2:
					b.Errorf("sharded-%d sustained %.2fx the flat rate on a %d-core host; want >= 2x",
						shards, ratio, runtime.NumCPU())
				case runtime.NumCPU() < 4:
					b.Logf("%d-core host: %.2fx vs flat is pipelining-only (>= 2x needs >= 4 cores)",
						runtime.NumCPU(), ratio)
				default:
					b.Logf("%.2fx vs flat", ratio)
				}
			}
		}
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sharded-%d", shards), shardedCase(shards, false))
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("append-%d", shards), shardedCase(shards, true))
	}
}

// BenchmarkE12_WeakScaling is experiment E12: aggregate rate of P
// shared-nothing processes on local cores, each streaming its own graphs
// (the paper's Section III methodology at laptop scale). The per-process
// engine and workload shape match E2.
func BenchmarkE12_WeakScaling(b *testing.B) {
	stream := powerlaw.StreamSpec{TotalEdges: 400_000, SetSize: 100_000, Scale: 28, Seed: 3}
	factory := func() (baselines.Engine, error) { return baselines.NewHierGraphBLAS(1<<28, nil) }
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			var total int64
			var seconds float64
			for i := 0; i < b.N; i++ {
				r, err := cluster.RunLocalWeak(factory, stream, procs)
				if err != nil {
					b.Fatal(err)
				}
				total += r.Updates
				seconds += r.Seconds
			}
			b.ReportMetric(float64(total)/seconds, "updates/s")
		})
	}
}
