package hhgb

import (
	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/shard"
)

// ErrClosed is the sentinel returned by Append, AppendWeighted, Update,
// UpdateWeighted, and Appender methods once the Sharded matrix (or the
// individual Appender) has been closed. Test with errors.Is.
var ErrClosed = shard.ErrClosed

// Sharded is a concurrent streaming traffic matrix: one logical dim x dim
// matrix hash-partitioned across S independent hierarchical hypersparse
// cascades, each owned by a dedicated worker goroutine behind a bounded
// batch queue. It is the single-node analogue of the paper's shared-nothing
// scaling experiment — aggregate update throughput scales with cores while
// every query remains exactly equivalent to the unsharded TrafficMatrix.
//
// Ingest: Append (and Update, its alias) is safe for concurrent use by any
// number of goroutines; each call partitions into producer-local shard
// buffers (a bounded striped set) that are handed to the shard workers as
// they fill, so producers never contend on a shared splitter.
// A dedicated producer goroutine can hold its own buffers with NewAppender.
// Ingest is asynchronous: a nil return means the batch was accepted.
//
// Queries: analysis calls are pushed down to the shard workers and merged
// at read time (degree and traffic vectors by monoid merge, top-k by
// bounded heap, Lookup by routing to the one owning shard), so their
// serial cost tracks the result size rather than the total stored entries.
// Queries barrier internally and observe a batch-atomic snapshot: each
// accepted batch is either entirely included or entirely excluded.
//
// Lifecycle: NewSharded starts the shard workers. Call Flush to make all
// accepted batches visible to queries mid-stream, and Close when done
// ingesting: Close drains every buffer and queue, stops the workers, and
// leaves the matrix fully queryable. After Close, Append/Update (and any
// outstanding Appender's Append) fail with ErrClosed. Close is idempotent.
type Sharded struct {
	g   *shard.Group[uint64]
	dim uint64
}

// NewSharded returns an empty sharded dim x dim traffic matrix. With no
// options it uses runtime.GOMAXPROCS(0) shards, each a default 4-level
// geometric cascade; see WithShards, WithQueueDepth, WithHandoff, WithCuts,
// and WithGeometricCuts.
func NewSharded(dim uint64, opts ...Option) (*Sharded, error) {
	o := options{cuts: hier.DefaultConfig().Cuts}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	g, err := shard.NewGroup[uint64](gb.Index(dim), gb.Index(dim), shard.Config{
		Shards:  o.shards,
		Depth:   o.queueDepth,
		Handoff: o.handoff,
		Hier:    hier.Config{Cuts: o.cuts},
	})
	if err != nil {
		return nil, err
	}
	return &Sharded{g: g, dim: dim}, nil
}

// Dim returns the matrix dimension.
func (s *Sharded) Dim() uint64 { return s.dim }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return s.g.NumShards() }

// Levels returns the per-shard cascade depth.
func (s *Sharded) Levels() int { return s.g.Levels() }

// Append streams a batch of (src, dst) observations with weight 1 each.
// Safe for concurrent use; the slices are copied before the call returns.
// After Close it returns ErrClosed.
func (s *Sharded) Append(src, dst []uint64) error {
	return appendUnit(src, dst, s.AppendWeighted)
}

// AppendWeighted streams a batch of weighted observations. Safe for
// concurrent use; the slices are copied before the call returns. After
// Close it returns ErrClosed.
func (s *Sharded) AppendWeighted(src, dst, weight []uint64) error {
	return appendWeighted(src, dst, weight, s.g.Update)
}

// Update is Append under its original name.
func (s *Sharded) Update(src, dst []uint64) error { return s.Append(src, dst) }

// UpdateWeighted is AppendWeighted under its original name.
func (s *Sharded) UpdateWeighted(src, dst, weight []uint64) error {
	return s.AppendWeighted(src, dst, weight)
}

// Appender is a per-producer ingest handle over a Sharded matrix: it owns
// one set of shard-local buffers, so a dedicated producer goroutine
// partitions straight into them with no pool round-trip and hands a buffer
// to a shard worker only when it fills. Not safe for concurrent use —
// create one per goroutine with Sharded.NewAppender. The matrix's queries,
// Flush, and Close all drain outstanding appender buffers, so appended
// entries are never stranded; Close the appender (or the matrix) when done.
type Appender struct {
	a *shard.Appender[uint64]
}

// NewAppender returns a new per-producer appender. It fails with ErrClosed
// after the matrix is closed.
func (s *Sharded) NewAppender() (*Appender, error) {
	a, err := s.g.NewAppender()
	if err != nil {
		return nil, err
	}
	return &Appender{a: a}, nil
}

// Append streams a batch of (src, dst) observations with weight 1 each
// into the producer-local buffers. After the appender or its matrix is
// closed it returns ErrClosed.
func (a *Appender) Append(src, dst []uint64) error {
	return appendUnit(src, dst, a.AppendWeighted)
}

// AppendWeighted streams a batch of weighted observations into the
// producer-local buffers.
func (a *Appender) AppendWeighted(src, dst, weight []uint64) error {
	return appendWeighted(src, dst, weight, a.a.Append)
}

// Buffered reports how many accepted entries are still staged in this
// appender's local buffers (not yet handed to a shard worker).
func (a *Appender) Buffered() int { return a.a.Buffered() }

// Flush hands the buffered entries to the shard workers without waiting
// for ingest; the matrix's Flush (or any query) then makes them visible.
func (a *Appender) Flush() error { return a.a.Flush() }

// Close hands off any buffered entries and detaches the appender; further
// Append calls return ErrClosed. Close is idempotent.
func (a *Appender) Close() error { return a.a.Close() }

// Flush drains every producer buffer and shard queue and completes all
// pending cascade work, surfacing any asynchronous ingest error.
func (s *Sharded) Flush() error { return s.g.Flush() }

// Close stops the ingest workers after draining the producer buffers and
// queues. The matrix stays queryable; Append/Update after Close fail with
// ErrClosed. Close is idempotent.
func (s *Sharded) Close() error { return s.g.Close() }

// Err reports the first asynchronous ingest error, if any shard failed.
func (s *Sharded) Err() error { return s.g.Err() }

// Entries returns the number of distinct (src, dst) pairs accumulated:
// the per-shard counts, summed (each pair lives on exactly one shard).
func (s *Sharded) Entries() (int, error) { return s.g.NVals() }

// Do materializes the merged matrix and visits every entry in row-major
// order, stopping early if f returns false. This is the one query that
// genuinely needs the full Σ materialization.
func (s *Sharded) Do(f func(src, dst, packets uint64) bool) error {
	q, err := s.g.Query()
	if err != nil {
		return err
	}
	q.Iterate(func(i, j gb.Index, v uint64) bool {
		return f(uint64(i), uint64(j), v)
	})
	return nil
}

// Lookup returns the accumulated weight for one (src, dst) pair and
// whether any traffic was recorded for it. The pair lives on exactly one
// shard, so the lookup is pushed down to that shard alone — no merged
// matrix is ever built.
func (s *Sharded) Lookup(src, dst uint64) (uint64, bool, error) {
	return s.g.Lookup(gb.Index(src), gb.Index(dst))
}

// TopSources returns the k sources with the most total traffic. Per-shard
// traffic vectors are computed on the shard workers and merged at read
// time; the result is identical to the unsharded TrafficMatrix's.
func (s *Sharded) TopSources(k int) ([]Ranked, error) {
	top, err := s.g.TopRows(k)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, len(top))
	for i, e := range top {
		out[i] = Ranked{ID: uint64(e.Index), Value: e.Value}
	}
	return out, nil
}

// TopDestinations returns the k destinations with the most total traffic,
// merged across shards like TopSources.
func (s *Sharded) TopDestinations(k int) ([]Ranked, error) {
	top, err := s.g.TopCols(k)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, len(top))
	for i, e := range top {
		out[i] = Ranked{ID: uint64(e.Index), Value: e.Value}
	}
	return out, nil
}

// Summary computes the aggregate statistics of the merged matrix in a
// single batch-atomic barrier: every field describes the same instant of
// the stream, and all reductions run shard-local before a result-sized
// merge.
func (s *Sharded) Summary() (Summary, error) {
	agg, err := s.g.AggregateAll()
	if err != nil {
		return Summary{}, err
	}
	maxOut, err := gb.VecReduce(agg.RowDegrees, gb.MaxWith[uint64](0))
	if err != nil {
		return Summary{}, err
	}
	maxIn, err := gb.VecReduce(agg.ColDegrees, gb.MaxWith[uint64](0))
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Entries:      agg.NVals,
		Sources:      agg.RowDegrees.NVals(),
		Destinations: agg.ColDegrees.NVals(),
		TotalPackets: agg.Total,
		MaxOutDegree: maxOut,
		MaxInDegree:  maxIn,
	}, nil
}

// Stats returns the cumulative ingest counters merged across shards:
// scalar counters add, per-level promotion counters add elementwise.
func (s *Sharded) Stats() CascadeStats {
	st := s.g.Stats()
	return CascadeStats{
		Updates:         st.Updates,
		Batches:         st.Batches,
		Cascades:        st.Cascades,
		CascadedEntries: st.CascadedEntries,
	}
}

// ShardStats reports every shard's own cascade counters, for inspecting
// partition balance.
func (s *Sharded) ShardStats() []CascadeStats {
	per := s.g.ShardStats()
	out := make([]CascadeStats, len(per))
	for i, st := range per {
		out[i] = CascadeStats{
			Updates:         st.Updates,
			Batches:         st.Batches,
			Cascades:        st.Cascades,
			CascadedEntries: st.CascadedEntries,
		}
	}
	return out
}
