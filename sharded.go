package hhgb

import (
	"fmt"

	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/shard"
	"hhgb/internal/stats"
)

// Sharded is a concurrent streaming traffic matrix: one logical dim x dim
// matrix hash-partitioned across S independent hierarchical hypersparse
// cascades, each owned by a dedicated worker goroutine behind a bounded
// batch queue. It is the single-node analogue of the paper's shared-nothing
// scaling experiment — aggregate update throughput scales with cores while
// every query remains exactly equivalent to the unsharded TrafficMatrix.
//
// Unlike TrafficMatrix, Update is safe for concurrent use by any number of
// goroutines, and ingest is asynchronous: a nil return means the batch was
// accepted. Call Flush to make all accepted batches visible to queries (the
// queries also barrier internally, so they observe a batch-atomic snapshot:
// each accepted batch is either entirely included or entirely excluded),
// and Close when done ingesting; after Close the matrix stays queryable
// but Update fails.
type Sharded struct {
	g   *shard.Group[uint64]
	dim uint64
}

// NewSharded returns an empty sharded dim x dim traffic matrix. With no
// options it uses runtime.GOMAXPROCS(0) shards, each a default 4-level
// geometric cascade; see WithShards, WithQueueDepth, WithCuts, and
// WithGeometricCuts.
func NewSharded(dim uint64, opts ...Option) (*Sharded, error) {
	o := options{cuts: hier.DefaultConfig().Cuts}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	g, err := shard.NewGroup[uint64](gb.Index(dim), gb.Index(dim), shard.Config{
		Shards: o.shards,
		Depth:  o.queueDepth,
		Hier:   hier.Config{Cuts: o.cuts},
	})
	if err != nil {
		return nil, err
	}
	return &Sharded{g: g, dim: dim}, nil
}

// Dim returns the matrix dimension.
func (s *Sharded) Dim() uint64 { return s.dim }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return s.g.NumShards() }

// Levels returns the per-shard cascade depth.
func (s *Sharded) Levels() int { return s.g.Levels() }

// Update streams a batch of (src, dst) observations with weight 1 each.
// Safe for concurrent use; the slices are copied before the call returns.
func (s *Sharded) Update(src, dst []uint64) error {
	if len(src) != len(dst) {
		return fmt.Errorf("%w: src/dst lengths %d/%d differ", gb.ErrInvalidValue, len(src), len(dst))
	}
	ones := make([]uint64, len(src))
	for k := range ones {
		ones[k] = 1
	}
	return s.UpdateWeighted(src, dst, ones)
}

// UpdateWeighted streams a batch of weighted observations. Safe for
// concurrent use; the slices are copied before the call returns.
func (s *Sharded) UpdateWeighted(src, dst, weight []uint64) error {
	if len(src) != len(dst) || len(src) != len(weight) {
		return fmt.Errorf("%w: batch lengths %d/%d/%d differ", gb.ErrInvalidValue, len(src), len(dst), len(weight))
	}
	rows := make([]gb.Index, len(src))
	cols := make([]gb.Index, len(dst))
	for k := range src {
		rows[k] = gb.Index(src[k])
		cols[k] = gb.Index(dst[k])
	}
	return s.g.Update(rows, cols, weight)
}

// Flush drains every shard queue and completes all pending cascade work,
// surfacing any asynchronous ingest error.
func (s *Sharded) Flush() error { return s.g.Flush() }

// Close stops the ingest workers after draining their queues. The matrix
// stays queryable; Update after Close fails. Close is idempotent.
func (s *Sharded) Close() error { return s.g.Close() }

// Err reports the first asynchronous ingest error, if any shard failed.
func (s *Sharded) Err() error { return s.g.Err() }

// Entries returns the number of distinct (src, dst) pairs accumulated.
func (s *Sharded) Entries() (int, error) { return s.g.NVals() }

// Do materializes the merged matrix and visits every entry in row-major
// order, stopping early if f returns false.
func (s *Sharded) Do(f func(src, dst, packets uint64) bool) error {
	q, err := s.g.Query()
	if err != nil {
		return err
	}
	q.Iterate(func(i, j gb.Index, v uint64) bool {
		return f(uint64(i), uint64(j), v)
	})
	return nil
}

// Lookup returns the accumulated weight for one (src, dst) pair and
// whether any traffic was recorded for it.
func (s *Sharded) Lookup(src, dst uint64) (uint64, bool, error) {
	q, err := s.g.Query()
	if err != nil {
		return 0, false, err
	}
	return lookupIn(q, src, dst)
}

// TopSources returns the k sources with the most total traffic, merged
// across shards.
func (s *Sharded) TopSources(k int) ([]Ranked, error) {
	q, err := s.g.Query()
	if err != nil {
		return nil, err
	}
	return topSourcesOf(q, k)
}

// TopDestinations returns the k destinations with the most total traffic,
// merged across shards.
func (s *Sharded) TopDestinations(k int) ([]Ranked, error) {
	q, err := s.g.Query()
	if err != nil {
		return nil, err
	}
	return topDestinationsOf(q, k)
}

// Summary computes the aggregate statistics of the merged matrix.
func (s *Sharded) Summary() (Summary, error) {
	q, err := s.g.Query()
	if err != nil {
		return Summary{}, err
	}
	return summaryOf(q)
}

// Stats returns the cumulative ingest counters merged across shards:
// scalar counters add, per-level promotion counters add elementwise.
func (s *Sharded) Stats() CascadeStats {
	st := s.g.Stats()
	return CascadeStats{
		Updates:         st.Updates,
		Batches:         st.Batches,
		Cascades:        st.Cascades,
		CascadedEntries: st.CascadedEntries,
	}
}

// ShardStats reports every shard's own cascade counters, for inspecting
// partition balance.
func (s *Sharded) ShardStats() []CascadeStats {
	per := s.g.ShardStats()
	out := make([]CascadeStats, len(per))
	for i, st := range per {
		out[i] = CascadeStats{
			Updates:         st.Updates,
			Batches:         st.Batches,
			Cascades:        st.Cascades,
			CascadedEntries: st.CascadedEntries,
		}
	}
	return out
}

// lookupIn extracts one entry from a materialized query matrix.
func lookupIn(q *gb.Matrix[uint64], src, dst uint64) (uint64, bool, error) {
	v, err := q.ExtractElement(gb.Index(src), gb.Index(dst))
	if err != nil {
		if err == gb.ErrNoValue {
			return 0, false, nil
		}
		return 0, false, err
	}
	return v, true, nil
}

// topSourcesOf ranks per-source traffic of a materialized query matrix.
func topSourcesOf(q *gb.Matrix[uint64], k int) ([]Ranked, error) {
	v, err := stats.OutTraffic(q)
	if err != nil {
		return nil, err
	}
	return rankedOf(v, k)
}

// topDestinationsOf ranks per-destination traffic of a materialized query
// matrix.
func topDestinationsOf(q *gb.Matrix[uint64], k int) ([]Ranked, error) {
	v, err := stats.InTraffic(q)
	if err != nil {
		return nil, err
	}
	return rankedOf(v, k)
}

// summaryOf computes the aggregate statistics of a materialized query
// matrix.
func summaryOf(q *gb.Matrix[uint64]) (Summary, error) {
	s, err := stats.Summarize(q)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Entries:      s.Entries,
		Sources:      s.Sources,
		Destinations: s.Destinations,
		TotalPackets: s.TotalPackets,
		MaxOutDegree: s.MaxOutDegree,
		MaxInDegree:  s.MaxInDegree,
	}, nil
}
