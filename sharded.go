package hhgb

import (
	"fmt"

	"hhgb/internal/gb"
	"hhgb/internal/hier"
	"hhgb/internal/shard"
)

// ErrClosed is the sentinel returned by every ingest entry point — Append,
// AppendWeighted, Update, UpdateWeighted, Checkpoint, and the Append,
// AppendWeighted, and Flush methods of any Appender — once the Sharded
// matrix (or, for its own methods, the individual Appender) has been
// closed. Queries never return it: a closed matrix stays fully readable.
// Test with errors.Is.
var ErrClosed = shard.ErrClosed

// ErrNotDurable is returned by Checkpoint on a Sharded matrix built
// without WithDurability. Test with errors.Is.
var ErrNotDurable = shard.ErrNotDurable

// Sharded is a concurrent streaming traffic matrix: one logical dim x dim
// matrix hash-partitioned across S independent hierarchical hypersparse
// cascades, each owned by a dedicated worker goroutine behind a bounded
// batch queue. It is the single-node analogue of the paper's shared-nothing
// scaling experiment — aggregate update throughput scales with cores while
// every query remains exactly equivalent to the unsharded TrafficMatrix.
//
// Ingest: Append (and Update, its alias) is safe for concurrent use by any
// number of goroutines; each call partitions into producer-local shard
// buffers (a bounded striped set) that are handed to the shard workers as
// they fill, so producers never contend on a shared splitter.
// A dedicated producer goroutine can hold its own buffers with NewAppender.
// Ingest is asynchronous: a nil return means the batch was accepted.
//
// Queries: analysis calls are pushed down to the shard workers and merged
// at read time (degree and traffic vectors by monoid merge, top-k by
// bounded heap, Lookup by routing to the one owning shard), so their
// serial cost tracks the result size rather than the total stored entries.
// Queries barrier internally and observe a batch-atomic snapshot: each
// accepted batch is either entirely included or entirely excluded.
//
// Durability: with WithDurability(dir) each shard worker additionally
// write-ahead-logs its batches under dir with a group-commit sync policy
// (WithSyncEvery). Flush then guarantees every accepted batch survives a
// crash; Checkpoint compacts the logs into per-shard snapshots; Recover
// rebuilds the matrix from the directory after a crash or restart.
//
// Lifecycle: NewSharded starts the shard workers. Call Flush to make all
// accepted batches visible to queries mid-stream, and Close when done
// ingesting: Close drains every buffer and queue, stops the workers (on a
// durable matrix, after a final checkpoint), and leaves the matrix fully
// queryable. After Close, Append/Update (and any outstanding Appender's
// Append) fail with ErrClosed. Close is idempotent.
type Sharded struct {
	g   *shard.Group[uint64]
	dim uint64
}

// NewSharded returns an empty sharded dim x dim traffic matrix. With no
// options it uses runtime.GOMAXPROCS(0) shards, each a default 4-level
// geometric cascade; see WithShards, WithQueueDepth, WithHandoff, WithCuts,
// WithGeometricCuts, WithDurability, and WithSyncEvery.
func NewSharded(dim uint64, opts ...Option) (*Sharded, error) {
	o := options{cuts: hier.DefaultConfig().Cuts}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.syncEvery != 0 && o.durDir == "" {
		return nil, fmt.Errorf("%w: WithSyncEvery requires WithDurability", gb.ErrInvalidValue)
	}
	if o.windowedOnly() {
		return nil, fmt.Errorf("%w: windowing options apply to NewWindowed, not NewSharded", gb.ErrInvalidValue)
	}
	g, err := shard.NewGroup[uint64](gb.Index(dim), gb.Index(dim), shard.Config{
		Shards:  o.shards,
		Depth:   o.queueDepth,
		Handoff: o.handoff,
		Hier:    hier.Config{Cuts: o.cuts},
		Durable: shard.Durability{Dir: o.durDir, SyncEvery: o.syncEvery},
		Metrics: shard.NewMetrics(o.metrics),
		Flight:  o.flight,
	})
	if err != nil {
		return nil, err
	}
	registerShardedFuncs(g, o.metrics)
	return &Sharded{g: g, dim: dim}, nil
}

// registerShardedFuncs registers the flat matrix's sampled queue-depth
// gauge. Only on a real registry: sampling funcs hold the group alive and
// must not pile up on the shared discard registry.
func registerShardedFuncs(g *shard.Group[uint64], m *Metrics) {
	if m == nil {
		return
	}
	m.GaugeFunc("hhgb_shard_queue_depth",
		"Batches pending on the shard ingest queues.",
		func() int64 { return int64(g.QueueDepth()) })
}

// Recover restores a durable Sharded matrix from the directory a previous
// WithDurability matrix wrote: the manifest fixes the dimension, shard
// count, and cascade cuts (so WithShards/WithCuts must not be passed);
// per-shard snapshots are decoded and the surviving write-ahead-log tails
// replayed on top, tolerating the torn final frame a crash mid-append
// leaves. Every batch accepted before the last Flush or Checkpoint is
// restored bit-identically; later batches come back per shard as far as
// each shard's own group commit reached (see WithSyncEvery), and the
// unsynced tails are lost, exactly as group-commit promises. When
// anything was replayed, the recovered matrix checkpoints immediately
// (compacting the replayed logs away); either way it is ready to ingest.
//
// WithQueueDepth, WithHandoff, and WithSyncEvery tune the recovered
// matrix as they would a new one.
//
// The directory has a single owner at a time: Recover refuses a directory
// owned by a live matrix — in this process or any other (two groups over
// one directory would prune each other's logs). The on-disk lock is
// kernel-held (flock on unix) and releases the moment its owner dies, so
// a crashed owner never blocks recovery.
func Recover(dir string, opts ...Option) (*Sharded, error) {
	var o options
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.shards != 0 || o.cuts != nil {
		return nil, fmt.Errorf("%w: shard count and cuts are fixed by the recovered manifest", gb.ErrInvalidValue)
	}
	if o.windowedOnly() {
		return nil, fmt.Errorf("%w: windowing options apply to NewWindowed, not Recover", gb.ErrInvalidValue)
	}
	if o.durDir != "" && o.durDir != dir {
		return nil, fmt.Errorf("%w: WithDurability(%q) conflicts with Recover dir %q", gb.ErrInvalidValue, o.durDir, dir)
	}
	g, _, err := shard.RecoverGroup[uint64](shard.Config{
		Depth:   o.queueDepth,
		Handoff: o.handoff,
		Durable: shard.Durability{Dir: dir, SyncEvery: o.syncEvery},
		Metrics: shard.NewMetrics(o.metrics),
		Flight:  o.flight,
	})
	if err != nil {
		return nil, err
	}
	registerShardedFuncs(g, o.metrics)
	return &Sharded{g: g, dim: uint64(g.NRows())}, nil
}

// Checkpoint makes the entire accepted stream durable and compact: a
// batch-atomic barrier at which every shard fsyncs its write-ahead log,
// serializes its cascade into a snapshot file, and truncates the log, with
// the set committed atomically via the manifest. After Checkpoint returns,
// Recover needs only the snapshots — no replay. It fails with ErrClosed
// after Close (which already took a final checkpoint) and with
// ErrNotDurable on a matrix built without WithDurability.
func (s *Sharded) Checkpoint() error { return s.g.Checkpoint() }

// Dim returns the matrix dimension.
func (s *Sharded) Dim() uint64 { return s.dim }

// Durable reports whether the matrix was built with WithDurability (or
// restored by Recover): its ingest is write-ahead-logged and Flush is a
// group-commit point.
func (s *Sharded) Durable() bool { return s.g.Durable() }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return s.g.NumShards() }

// Levels returns the per-shard cascade depth.
func (s *Sharded) Levels() int { return s.g.Levels() }

// Append streams a batch of (src, dst) observations with weight 1 each.
// Safe for concurrent use; the slices are copied before the call returns.
// After Close it returns ErrClosed.
func (s *Sharded) Append(src, dst []uint64) error {
	return appendUnit(src, dst, s.AppendWeighted)
}

// AppendWeighted streams a batch of weighted observations. Safe for
// concurrent use; the slices are copied before the call returns. After
// Close it returns ErrClosed.
func (s *Sharded) AppendWeighted(src, dst, weight []uint64) error {
	return appendWeighted(src, dst, weight, s.g.Update)
}

// AppendWeightedSession streams one insert frame under the exactly-once
// protocol: (session, seq) is the frame's dedup key, and a frame at or
// below the session's accepted frontier is acknowledged (dup=true)
// without re-applying anything. A session's frames must be appended in
// seq order — the network server's per-connection processing provides
// this; sessions and seqs are its to assign. On a durable matrix the key
// is journaled beside the batch, so dedup survives crash recovery.
func (s *Sharded) AppendWeightedSession(session string, seq uint64, src, dst, weight []uint64) (bool, error) {
	return s.AppendWeightedSessionSpan(session, seq, src, dst, weight, nil)
}

// AppendWeightedSessionSpan is AppendWeightedSession carrying a sampled
// frame's latency span (see the network server's tracing); a nil span —
// the unsampled common case — costs nothing.
func (s *Sharded) AppendWeightedSessionSpan(session string, seq uint64, src, dst, weight []uint64, sp *IngestSpan) (bool, error) {
	if len(src) != len(dst) || len(src) != len(weight) {
		return false, fmt.Errorf("%w: batch lengths %d/%d/%d differ", gb.ErrInvalidValue, len(src), len(dst), len(weight))
	}
	rows := make([]gb.Index, len(src))
	cols := make([]gb.Index, len(dst))
	for k := range src {
		rows[k] = gb.Index(src[k])
		cols[k] = gb.Index(dst[k])
	}
	return s.g.UpdateSessionSpan(session, seq, rows, cols, weight, sp)
}

// SessionResume reports a session's resume frontier: the highest insert
// seq a reconnecting client may safely skip (durably applied on a durable
// matrix; accepted otherwise). 0 for unknown sessions.
func (s *Sharded) SessionResume(session string) uint64 { return s.g.ResumeSeq(session) }

// SessionMint reports a session's seq-minting floor: the highest insert
// seq the matrix's dedup state has ever recorded for the session. Always
// >= SessionResume — a resuming producer that lost its retransmit state
// must assign new frames seqs strictly above it, or they would be
// acknowledged as duplicates without being applied. 0 for unknown
// sessions.
func (s *Sharded) SessionMint(session string) uint64 { return s.g.MintSeq(session) }

// Update is Append under its original name; it shares Append's ErrClosed
// semantics.
func (s *Sharded) Update(src, dst []uint64) error { return s.Append(src, dst) }

// UpdateWeighted is AppendWeighted under its original name; it shares
// AppendWeighted's ErrClosed semantics.
func (s *Sharded) UpdateWeighted(src, dst, weight []uint64) error {
	return s.AppendWeighted(src, dst, weight)
}

// Appender is a per-producer ingest handle over a Sharded matrix: it owns
// one set of shard-local buffers, so a dedicated producer goroutine
// partitions straight into them with no pool round-trip and hands a buffer
// to a shard worker only when it fills. Not safe for concurrent use —
// create one per goroutine with Sharded.NewAppender. The matrix's queries,
// Flush, and Close all drain outstanding appender buffers, so appended
// entries are never stranded; Close the appender (or the matrix) when done.
type Appender struct {
	a *shard.Appender[uint64]
}

// NewAppender returns a new per-producer appender. It fails with ErrClosed
// after the matrix is closed.
func (s *Sharded) NewAppender() (*Appender, error) {
	a, err := s.g.NewAppender()
	if err != nil {
		return nil, err
	}
	return &Appender{a: a}, nil
}

// Append streams a batch of (src, dst) observations with weight 1 each
// into the producer-local buffers. After the appender or its matrix is
// closed it returns ErrClosed.
func (a *Appender) Append(src, dst []uint64) error {
	return appendUnit(src, dst, a.AppendWeighted)
}

// AppendWeighted streams a batch of weighted observations into the
// producer-local buffers. After the appender or its matrix is closed it
// returns ErrClosed.
func (a *Appender) AppendWeighted(src, dst, weight []uint64) error {
	return appendWeighted(src, dst, weight, a.a.Append)
}

// Buffered reports how many accepted entries are still staged in this
// appender's local buffers (not yet handed to a shard worker).
func (a *Appender) Buffered() int { return a.a.Buffered() }

// Flush hands the buffered entries to the shard workers without waiting
// for ingest; the matrix's Flush (or any query) then makes them visible.
// After the appender or its matrix is closed it returns ErrClosed (the
// closer already drained the buffers — appended entries are never lost).
func (a *Appender) Flush() error { return a.a.Flush() }

// Close hands off any buffered entries and detaches the appender; further
// Append, AppendWeighted, and Flush calls return ErrClosed. Close is
// idempotent and safe after the matrix itself closed.
func (a *Appender) Close() error { return a.a.Close() }

// Flush drains every producer buffer and shard queue and completes all
// pending cascade work, surfacing any asynchronous ingest error. On a
// durable matrix it is also a group-commit point: every batch accepted
// before the call is fsynced and survives a crash.
func (s *Sharded) Flush() error { return s.g.Flush() }

// Close stops the ingest workers after draining the producer buffers and
// queues; on a durable matrix it then takes a final checkpoint, so a later
// Recover restores from snapshots alone. The matrix stays queryable;
// Append/Update after Close fail with ErrClosed. Close is idempotent.
func (s *Sharded) Close() error { return s.g.Close() }

// Err reports the first asynchronous ingest error, if any shard failed.
func (s *Sharded) Err() error { return s.g.Err() }

// Entries returns the number of distinct (src, dst) pairs accumulated:
// the per-shard counts, summed (each pair lives on exactly one shard).
func (s *Sharded) Entries() (int, error) { return s.g.NVals() }

// Do materializes the merged matrix and visits every entry in row-major
// order, stopping early if f returns false. This is the one query that
// genuinely needs the full Σ materialization.
func (s *Sharded) Do(f func(src, dst, packets uint64) bool) error {
	q, err := s.g.Query()
	if err != nil {
		return err
	}
	q.Iterate(func(i, j gb.Index, v uint64) bool {
		return f(uint64(i), uint64(j), v)
	})
	return nil
}

// Lookup returns the accumulated weight for one (src, dst) pair and
// whether any traffic was recorded for it. The pair lives on exactly one
// shard, so the lookup is pushed down to that shard alone — no merged
// matrix is ever built.
func (s *Sharded) Lookup(src, dst uint64) (uint64, bool, error) {
	return s.g.Lookup(gb.Index(src), gb.Index(dst))
}

// TopSources returns the k sources with the most total traffic. Per-shard
// traffic vectors are computed on the shard workers and merged at read
// time; the result is identical to the unsharded TrafficMatrix's.
func (s *Sharded) TopSources(k int) ([]Ranked, error) {
	top, err := s.g.TopRows(k)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, len(top))
	for i, e := range top {
		out[i] = Ranked{ID: uint64(e.Index), Value: e.Value}
	}
	return out, nil
}

// TopDestinations returns the k destinations with the most total traffic,
// merged across shards like TopSources.
func (s *Sharded) TopDestinations(k int) ([]Ranked, error) {
	top, err := s.g.TopCols(k)
	if err != nil {
		return nil, err
	}
	out := make([]Ranked, len(top))
	for i, e := range top {
		out[i] = Ranked{ID: uint64(e.Index), Value: e.Value}
	}
	return out, nil
}

// Summary computes the aggregate statistics of the merged matrix in a
// single batch-atomic barrier: every field describes the same instant of
// the stream, and all reductions run shard-local before a result-sized
// merge.
func (s *Sharded) Summary() (Summary, error) {
	agg, err := s.g.AggregateAll()
	if err != nil {
		return Summary{}, err
	}
	maxOut, err := gb.VecReduce(agg.RowDegrees, gb.MaxWith[uint64](0))
	if err != nil {
		return Summary{}, err
	}
	maxIn, err := gb.VecReduce(agg.ColDegrees, gb.MaxWith[uint64](0))
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Entries:      agg.NVals,
		Sources:      agg.RowDegrees.NVals(),
		Destinations: agg.ColDegrees.NVals(),
		TotalPackets: agg.Total,
		MaxOutDegree: maxOut,
		MaxInDegree:  maxIn,
	}, nil
}

// Stats returns the cumulative ingest counters merged across shards:
// scalar counters add, per-level promotion counters add elementwise.
func (s *Sharded) Stats() CascadeStats {
	st := s.g.Stats()
	return CascadeStats{
		Updates:         st.Updates,
		Batches:         st.Batches,
		Cascades:        st.Cascades,
		CascadedEntries: st.CascadedEntries,
	}
}

// ShardStats reports every shard's own cascade counters, for inspecting
// partition balance.
func (s *Sharded) ShardStats() []CascadeStats {
	per := s.g.ShardStats()
	out := make([]CascadeStats, len(per))
	for i, st := range per {
		out[i] = CascadeStats{
			Updates:         st.Updates,
			Batches:         st.Batches,
			Cascades:        st.Cascades,
			CascadedEntries: st.CascadedEntries,
		}
	}
	return out
}
