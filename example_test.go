package hhgb_test

import (
	"fmt"
	"log"
	"os"

	"hhgb"
)

// ExampleNew shows the minimal streaming loop: create, update, query.
func ExampleNew() {
	tm, err := hhgb.New(hhgb.IPv4Space)
	if err != nil {
		log.Fatal(err)
	}
	// One batch of observations: 10.0.0.1 talks to 8.8.8.8 twice.
	srcs := []uint64{0x0a000001, 0x0a000001}
	dsts := []uint64{0x08080808, 0x08080808}
	if err := tm.Update(srcs, dsts); err != nil {
		log.Fatal(err)
	}
	v, ok, err := tm.Lookup(0x0a000001, 0x08080808)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v, ok)
	// Output: 2 true
}

// ExampleTrafficMatrix_Summary shows aggregate statistics over the
// accumulated matrix.
func ExampleTrafficMatrix_Summary() {
	tm, err := hhgb.New(1 << 20)
	if err != nil {
		log.Fatal(err)
	}
	if err := tm.UpdateWeighted(
		[]uint64{1, 1, 2},
		[]uint64{7, 8, 7},
		[]uint64{10, 20, 30},
	); err != nil {
		log.Fatal(err)
	}
	s, err := tm.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entries=%d sources=%d packets=%d maxFanOut=%d\n",
		s.Entries, s.Sources, s.TotalPackets, s.MaxOutDegree)
	// Output: entries=3 sources=2 packets=60 maxFanOut=2
}

// ExampleWithGeometricCuts shows tuning the cascade geometry, the paper's
// c_i parameters.
func ExampleWithGeometricCuts() {
	tm, err := hhgb.New(hhgb.IPv4Space, hhgb.WithGeometricCuts(5, 1024, 8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tm.Levels())
	// Output: 5
}

// ExampleTrafficMatrix_TopSources shows supernode ranking.
func ExampleTrafficMatrix_TopSources() {
	tm, err := hhgb.New(1 << 20)
	if err != nil {
		log.Fatal(err)
	}
	if err := tm.UpdateWeighted(
		[]uint64{42, 42, 7},
		[]uint64{1, 2, 1},
		[]uint64{100, 50, 10},
	); err != nil {
		log.Fatal(err)
	}
	top, err := tm.TopSources(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source %d sent %d packets\n", top[0].ID, top[0].Value)
	// Output: source 42 sent 150 packets
}

// ExampleNewSharded shows the concurrent ingest frontend: the same
// streaming loop as ExampleNew, but hash-partitioned across independent
// cascades so many goroutines can feed one logical matrix.
func ExampleNewSharded() {
	sm, err := hhgb.NewSharded(hhgb.IPv4Space, hhgb.WithShards(4))
	if err != nil {
		log.Fatal(err)
	}
	// Safe to call from any number of goroutines; here one suffices.
	srcs := []uint64{0x0a000001, 0x0a000001, 0x0a000002}
	dsts := []uint64{0x08080808, 0x08080808, 0x01010101}
	if err := sm.Update(srcs, dsts); err != nil {
		log.Fatal(err)
	}
	if err := sm.Close(); err != nil { // drain the shard queues
		log.Fatal(err)
	}
	v, ok, err := sm.Lookup(0x0a000001, 0x08080808)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v, ok, sm.Shards())
	// Output: 2 true 4
}

// ExampleSharded_checkpoint shows the durable ingest loop: a sharded
// matrix that write-ahead-logs every batch and compacts the logs into
// per-shard snapshots at each checkpoint.
func ExampleSharded_checkpoint() {
	dir, err := os.MkdirTemp("", "hhgb-durable")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sm, err := hhgb.NewSharded(1<<20, hhgb.WithShards(2), hhgb.WithDurability(dir))
	if err != nil {
		log.Fatal(err)
	}
	if err := sm.Update([]uint64{1, 2, 3}, []uint64{7, 8, 9}); err != nil {
		log.Fatal(err)
	}
	// The checkpoint is a batch-atomic barrier: every accepted batch is
	// fsynced, snapshotted per shard, and the logs truncate.
	if err := sm.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	sum, err := sm.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sum.Entries, sum.TotalPackets)
	_ = sm.Close()
	// Output: 3 3
}

// ExampleRecover shows a durable matrix surviving a restart: ingest, shut
// down, then rebuild from the directory. After a real crash the same
// Recover call additionally replays the write-ahead-log tails — every
// batch accepted before the last Flush or Checkpoint comes back.
func ExampleRecover() {
	dir, err := os.MkdirTemp("", "hhgb-recover")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sm, err := hhgb.NewSharded(1<<20, hhgb.WithShards(2), hhgb.WithDurability(dir))
	if err != nil {
		log.Fatal(err)
	}
	if err := sm.UpdateWeighted([]uint64{1, 1, 2}, []uint64{7, 7, 8}, []uint64{10, 5, 1}); err != nil {
		log.Fatal(err)
	}
	if err := sm.Close(); err != nil { // final checkpoint; releases the dir
		log.Fatal(err)
	}
	// The process restarts here. Recover rebuilds the matrix from the
	// manifest, snapshots, and any surviving log tails.
	rm, err := hhgb.Recover(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer rm.Close()
	v, ok, err := rm.Lookup(1, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v, ok, rm.Shards())
	// Output: 15 true 2
}
